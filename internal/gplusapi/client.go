package gplusapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"net/http"
	"net/url"
	"runtime/pprof"
	"strconv"
	"sync"
	"time"

	"gplus/internal/obs"
	"gplus/internal/obs/trace"
	"gplus/internal/resilience"
)

// ErrNotFound is returned for profiles that do not exist.
var ErrNotFound = errors.New("gplusapi: profile not found")

// Client talks to a gplusd instance. It retries transient failures —
// 429 and 5xx statuses, dropped/reset connections, timeouts, and torn
// response bodies — with exponential backoff and honors Retry-After
// hints. A Client is safe for concurrent use.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8041".
	BaseURL string
	// HTTPClient defaults to a client with a 30s timeout.
	HTTPClient *http.Client
	// CrawlerID identifies the crawl worker ("machine") to the service's
	// per-client rate limiter, standing in for the distinct source IPs of
	// the paper's 11 crawl machines.
	CrawlerID string
	// MaxRetries bounds retry attempts per request (default 5).
	MaxRetries int
	// BackoffBase is the first retry delay (default 50ms); it doubles per
	// attempt with jitter.
	BackoffBase time.Duration
	// MaxBackoff caps each retry delay (default 30s). Without a cap the
	// doubling shift overflows time.Duration once the attempt count
	// passes ~37, and a negative jitter bound panics.
	MaxBackoff time.Duration
	// Metrics receives client telemetry when non-nil: per-endpoint request
	// latency histograms (gplusapi_request_seconds), response status
	// counters (gplusapi_responses_total), transport-error and retry
	// counters. A nil registry costs one pointer check per request.
	Metrics *obs.Registry
	// Tracer records request-scoped spans when non-nil: one "api.<op>"
	// span per logical operation (annotated with its attempt total and
	// retry count) and one "attempt" child span per wire request,
	// annotated with its backoff delay and response status. Each attempt
	// injects an X-Gplus-Trace header so gplusd joins the trace and
	// records its server-side spans. nil costs one pointer check.
	Tracer *trace.Tracer
	// RetryBudget, when non-nil, gates every retry: a denied token turns
	// the request into an overload failure instead of another wire
	// attempt. Share one budget across all workers of a crawl so the
	// whole fleet's retry traffic is bounded together. nil allows all
	// retries (the pre-budget behavior).
	RetryBudget *resilience.RetryBudget
	// Breakers, when non-nil, circuit-breaks each endpoint independently:
	// an open breaker fails requests fast — no wire attempt — until its
	// cooldown admits a probe. Breaker denials are retryable and carry
	// the cooldown as their backoff hint. Share one group per crawl.
	Breakers *resilience.BreakerGroup
	// Feedback, when non-nil, receives congestion signals: RecordSuccess
	// per 200/404, RecordOverload per 429/503 or per-attempt deadline
	// expiry. The crawler plugs its AIMD gate in here.
	Feedback resilience.Feedback
	// AttemptTimeout, when positive, bounds each wire attempt separately
	// from the operation's context; an expired attempt is retryable (and
	// an overload signal) where an expired operation is terminal. The
	// remaining budget is propagated to the server in X-Gplus-Deadline so
	// it can shed work this client has already abandoned.
	AttemptTimeout time.Duration

	helpOnce sync.Once // registers the HELP lines of the client families
}

// Instrumentation series names; the endpoint label is one of "profile",
// "profile_html", "circle", "seed", or "stats".
func (c *Client) latencyHist(op string) *obs.Histogram {
	c.helpOnce.Do(func() {
		c.Metrics.Help("gplusapi_request_seconds", "End-to-end API request latency, by endpoint.")
		c.Metrics.Help("gplusapi_responses_total", "API responses received, by endpoint and status code.")
		c.Metrics.Help("gplusapi_retries_total", "Request retries burned, by endpoint.")
		c.Metrics.Help("gplusapi_transport_errors_total", "Requests failing below HTTP (resets, timeouts, torn bodies), by endpoint.")
	})
	return c.Metrics.Histogram(`gplusapi_request_seconds{endpoint="`+op+`"}`, nil)
}

func (c *Client) statusCounter(op string, code int) *obs.Counter {
	return c.Metrics.Counter(`gplusapi_responses_total{endpoint="` + op + `",code="` + strconv.Itoa(code) + `"}`)
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return &http.Client{Timeout: 30 * time.Second}
}

func (c *Client) maxRetries() int {
	if c.MaxRetries > 0 {
		return c.MaxRetries
	}
	return 5
}

func (c *Client) backoffBase() time.Duration {
	if c.BackoffBase > 0 {
		return c.BackoffBase
	}
	return 50 * time.Millisecond
}

func (c *Client) maxBackoff() time.Duration {
	if c.MaxBackoff > 0 {
		return c.MaxBackoff
	}
	return 30 * time.Second
}

// backoffCeil is the deterministic exponential ceiling for retry
// attempt (1-based): BackoffBase doubled per attempt, clamped at
// MaxBackoff, with the overflow of the shift detected by inverting it.
// It is monotone non-decreasing in attempt and never exceeds MaxBackoff
// for any BackoffBase/MaxRetries combination.
func (c *Client) backoffCeil(attempt int) time.Duration {
	ceil := c.maxBackoff()
	if shift := uint(attempt - 1); shift < 63 {
		if d := c.backoffBase() << shift; d>>shift == c.backoffBase() && d > 0 && d < ceil {
			ceil = d
		}
	}
	return ceil
}

// backoffDelay computes the jittered delay before retry attempt
// (1-based), honoring a Retry-After hint surfaced by the previous error
// (server hints and breaker cooldowns both implement RetryAfterHint).
// The delay is sampled in [ceil/2, ceil] — equal-range jitter keeps
// concurrent workers from synchronizing while keeping consecutive
// attempts monotone (ceil(k) is the lower bound of attempt k+1's range
// while both are below the clamp) — and the final value, hints
// included, never exceeds MaxBackoff and is never negative.
func (c *Client) backoffDelay(attempt int, lastErr error) time.Duration {
	ceil := c.backoffCeil(attempt)
	delay := ceil/2 + time.Duration(rand.Int64N(int64(ceil/2)+1))
	var hinted interface{ RetryAfterHint() time.Duration }
	if errors.As(lastErr, &hinted) {
		if h := hinted.RetryAfterHint(); h > delay {
			delay = h
		}
	}
	if maxB := c.maxBackoff(); delay > maxB {
		delay = maxB
	}
	return max(delay, 0)
}

// FetchProfile retrieves the public profile page of a user.
func (c *Client) FetchProfile(ctx context.Context, id string) (*ProfileDoc, error) {
	var doc ProfileDoc
	path := "/people/" + url.PathEscape(id)
	if err := c.getJSON(ctx, "profile", path, &doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

// FetchProfileHTML retrieves the profile as an HTML page and scrapes it,
// exercising the same path as the paper's crawler (which parsed the
// public profile pages rather than a JSON API).
func (c *Client) FetchProfileHTML(ctx context.Context, id string) (*ProfileDoc, error) {
	path := "/people/" + url.PathEscape(id) + "?alt=html"
	var doc *ProfileDoc
	err := c.withRetries(ctx, "profile_html", func(ctx context.Context) error {
		body, err := c.tryGetRaw(ctx, "profile_html", path)
		if err != nil {
			return err
		}
		_, psp := c.Tracer.StartSpan(ctx, "parse.html")
		doc, err = ParseProfileHTML(body)
		psp.SetError(err)
		psp.Finish()
		return err
	})
	if err != nil {
		return nil, err
	}
	return doc, nil
}

// FetchCircle retrieves one page of a user's circle list. An empty
// pageToken requests the first page; limit <= 0 uses the server default.
func (c *Client) FetchCircle(ctx context.Context, id string, dir CircleDir, pageToken string, limit int) (*CirclePage, error) {
	path := "/people/" + url.PathEscape(id) + "/circles/" + string(dir)
	q := url.Values{}
	if pageToken != "" {
		q.Set("pageToken", pageToken)
	}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var page CirclePage
	if err := c.getJSON(ctx, "circle", path, &page); err != nil {
		return nil, err
	}
	return &page, nil
}

// FetchSeed retrieves the id of a well-known popular user to seed a
// crawl from.
func (c *Client) FetchSeed(ctx context.Context) (string, error) {
	var doc SeedDoc
	if err := c.getJSON(ctx, "seed", "/seed", &doc); err != nil {
		return "", err
	}
	return doc.ID, nil
}

// FetchStats retrieves the server's ground-truth summary.
func (c *Client) FetchStats(ctx context.Context) (*StatsDoc, error) {
	var doc StatsDoc
	if err := c.getJSON(ctx, "stats", "/stats", &doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

func (c *Client) getJSON(ctx context.Context, op, path string, out any) error {
	return c.withRetries(ctx, op, func(ctx context.Context) error { return c.tryGetJSON(ctx, op, path, out) })
}

// withRetries runs fn with exponential backoff and jitter, honoring
// Retry-After hints surfaced through retryAfterError and breaker
// denials. Every retry must first win a token from the retry budget
// (when one is configured): an exhausted budget turns the request into
// an overload failure instead of amplifying load on a struggling
// service. Each wire attempt must also pass the endpoint's circuit
// breaker; a denial is retryable, costs no wire attempt, and reuses the
// breaker's cooldown as its backoff hint. fn receives the per-attempt
// context, which carries that attempt's span so doGet can propagate it
// to the service — and, when AttemptTimeout is set, a per-attempt
// deadline (the operation context stays visible through parentErr so an
// expired attempt retries while an expired operation aborts).
func (c *Client) withRetries(ctx context.Context, op string, fn func(context.Context) error) error {
	ctx, osp := c.Tracer.StartSpan(ctx, "api."+op)
	breaker := c.Breakers.Get(op)
	attempts, denials := 0, 0
	finish := func(err error) error {
		if osp != nil {
			osp.Annotate("attempts", strconv.Itoa(attempts))
			osp.SetRetries(max(attempts-1, 0))
			if denials > 0 {
				osp.Annotate("breaker_denials", strconv.Itoa(denials))
			}
			osp.SetError(err)
			osp.Finish()
		}
		return err
	}
	var lastErr error
	for attempt := 0; attempt <= c.maxRetries(); attempt++ {
		var delay time.Duration
		if attempt > 0 {
			if !c.RetryBudget.TrySpend() {
				return finish(fmt.Errorf("gplusapi: %w (last error: %w)", resilience.ErrRetryBudgetExhausted, lastErr))
			}
			c.Metrics.Counter(`gplusapi_retries_total{endpoint="` + op + `"}`).Inc()
			delay = c.backoffDelay(attempt, lastErr)
			select {
			case <-ctx.Done():
				return finish(ctx.Err())
			case <-time.After(delay):
			}
		}
		done, berr := breaker.Allow()
		if berr != nil {
			// Fail fast with no wire attempt (and no "attempt" span, so
			// retry-amplification accounting sees only real traffic); the
			// denial is retryable and hints the breaker's cooldown.
			denials++
			if osp != nil {
				var oe *resilience.OpenError
				if errors.As(berr, &oe) {
					osp.Annotate("breaker", oe.State.String())
				}
			}
			lastErr = berr
			continue
		}
		actx, asp := c.Tracer.StartSpan(ctx, "attempt")
		if asp != nil {
			asp.Annotate("n", strconv.Itoa(attempt+1))
			if attempt > 0 {
				asp.Annotate("backoff", delay.String())
			}
		}
		attempts++
		cancel := func() {}
		if c.AttemptTimeout > 0 {
			actx = context.WithValue(actx, parentCtxKey{}, ctx)
			actx, cancel = context.WithTimeout(actx, c.AttemptTimeout)
		}
		// Label the attempt's CPU samples with the endpoint so the
		// continuous profiler can attribute wire wait, body reads, and
		// JSON/HTML decoding per endpoint (nesting under any crawl-phase
		// labels already on the context).
		var err error
		pprof.Do(actx, pprof.Labels("endpoint", op), func(actx context.Context) {
			err = fn(actx)
		})
		cancel()
		asp.SetError(err)
		asp.Finish()
		// A working service — including one correctly reporting a missing
		// profile — counts as breaker health.
		done(err == nil || errors.Is(err, ErrNotFound))
		if err == nil {
			c.RetryBudget.Deposit()
			return finish(nil)
		}
		if !isRetryable(err) {
			return finish(err)
		}
		lastErr = err
	}
	return finish(fmt.Errorf("gplusapi: giving up after %d attempts: %w", c.maxRetries()+1, lastErr))
}

// parentCtxKey carries the operation-level context through a
// per-attempt timeout wrapper, so doGet can tell "this attempt expired"
// (retryable, an overload signal) from "the caller gave up" (terminal).
type parentCtxKey struct{}

// parentErr reports the operation-level context error: the parent's
// when an attempt timeout wrapper is present, ctx's own otherwise.
func parentErr(ctx context.Context) error {
	if parent, ok := ctx.Value(parentCtxKey{}).(context.Context); ok {
		return parent.Err()
	}
	return ctx.Err()
}

type retryAfterError struct {
	status int
	after  time.Duration
}

// Error describes the retryable status and its hint.
func (e *retryAfterError) Error() string {
	return fmt.Sprintf("gplusapi: server status %d (retry after %v)", e.status, e.after)
}

// RetryAfterHint surfaces the server's hint to backoffDelay.
func (e *retryAfterError) RetryAfterHint() time.Duration { return e.after }

// transientError marks transport-level failures — dropped or reset
// connections, client timeouts on hung requests, and torn bodies under a
// 200 — as retryable. A crawl expected to run for weeks (the paper's ran
// 45 days) cannot treat a single flaky connection as a permanent
// profile loss.
type transientError struct{ err error }

func (e *transientError) Error() string {
	return "gplusapi: transient transport error: " + e.err.Error()
}

func (e *transientError) Unwrap() error { return e.err }

func isRetryable(err error) bool {
	var ra *retryAfterError
	var te *transientError
	var oe *resilience.OpenError
	return errors.As(err, &ra) || errors.As(err, &te) || errors.As(err, &oe)
}

// IsOverload reports whether err is a pushback signal — the service or
// the resilience layer shedding load (429/503, admission sheds, open
// breakers, exhausted retry budgets, per-attempt deadline expiry) —
// rather than a permanent failure. The crawler requeues overloaded work
// instead of counting the profile as lost, which is what lets a crawl
// through a brownout still converge to the complete dataset.
func IsOverload(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, resilience.ErrRetryBudgetExhausted) {
		return true
	}
	var oe *resilience.OpenError
	if errors.As(err, &oe) {
		return true
	}
	var ra *retryAfterError
	if errors.As(err, &ra) {
		return ra.status == http.StatusTooManyRequests || ra.status == http.StatusServiceUnavailable
	}
	var te *transientError
	if errors.As(err, &te) {
		return errors.Is(te.err, context.DeadlineExceeded)
	}
	return false
}

func (c *Client) tryGetJSON(ctx context.Context, op, path string, out any) error {
	return c.doGet(ctx, op, path, func(body io.Reader) error {
		return json.NewDecoder(body).Decode(out)
	})
}

// tryGetRaw performs one GET and returns the whole response body.
func (c *Client) tryGetRaw(ctx context.Context, op, path string) ([]byte, error) {
	var raw []byte
	err := c.doGet(ctx, op, path, func(body io.Reader) error {
		var err error
		raw, err = io.ReadAll(body)
		return err
	})
	return raw, err
}

// doGet performs one GET and hands a 200 body to consume; other statuses
// map to the client's error taxonomy.
func (c *Client) doGet(ctx context.Context, op, path string, consume func(io.Reader) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return err
	}
	if c.CrawlerID != "" {
		req.Header.Set("X-Crawler-Id", c.CrawlerID)
	}
	// Propagate this attempt's remaining budget so the server can shed
	// work we will have abandoned by the time it leaves the queue.
	resilience.SetDeadlineHeader(ctx, req)
	// The context carries this attempt's span (see withRetries);
	// propagating it lets gplusd join the trace and record its
	// server-side spans under this attempt.
	sp := trace.SpanFromContext(ctx)
	trace.Inject(sp, req.Header)
	start := time.Now()
	resp, err := c.httpClient().Do(req)
	if c.Metrics != nil {
		c.latencyHist(op).Observe(time.Since(start).Seconds())
		if err != nil {
			c.Metrics.Counter(`gplusapi_transport_errors_total{endpoint="` + op + `"}`).Inc()
		} else {
			c.statusCounter(op, resp.StatusCode).Inc()
		}
	}
	if sp != nil && err == nil {
		sp.Annotate("status", strconv.Itoa(resp.StatusCode))
	}
	if err != nil {
		if parentErr(ctx) != nil {
			// The caller cancelled or timed out the whole operation;
			// retrying would only delay the shutdown.
			return err
		}
		if errors.Is(ctx.Err(), context.DeadlineExceeded) && errors.Is(err, context.DeadlineExceeded) {
			// Only this attempt's deadline expired: the request is worth
			// retrying, but a service too slow to answer inside the
			// attempt budget is congested — tell the AIMD gate.
			if c.Feedback != nil {
				c.Feedback.RecordOverload()
			}
		}
		return &transientError{err: err}
	}
	defer func() {
		io.Copy(io.Discard, resp.Body) // drain for connection reuse
		resp.Body.Close()
	}()
	switch {
	case resp.StatusCode == http.StatusOK:
		if err := consume(resp.Body); err != nil {
			if parentErr(ctx) != nil {
				return err
			}
			// A 200 whose body cannot be read or decoded is a torn
			// response (connection reset mid-body); the request is
			// idempotent, so retry it.
			return &transientError{err: err}
		}
		if c.Feedback != nil {
			c.Feedback.RecordSuccess()
		}
		return nil
	case resp.StatusCode == http.StatusNotFound:
		if c.Feedback != nil {
			// A correct 404 is a healthy service, not congestion.
			c.Feedback.RecordSuccess()
		}
		return ErrNotFound
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500:
		if c.Feedback != nil &&
			(resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable) {
			c.Feedback.RecordOverload()
		}
		after, _ := parseRetryAfter(resp.Header.Get("Retry-After"))
		return &retryAfterError{status: resp.StatusCode, after: after}
	default:
		return fmt.Errorf("gplusapi: unexpected status %d for %s", resp.StatusCode, path)
	}
}

// maxRetryAfter bounds what a Retry-After header can ask of us; a
// server demanding more is treated as hinting this much. It also keeps
// the seconds→Duration conversion far from int64 overflow.
const maxRetryAfter = time.Hour

// parseRetryAfter interprets a Retry-After header value per RFC 9110:
// either delay-seconds (we also tolerate fractional seconds, which the
// chaos server emits) or an HTTP-date. Negative delays, dates in the
// past, and garbage report ok=false with a zero duration, so callers
// fall back to the regular backoff schedule instead of sleeping a
// nonsense amount — or zero — on a hostile header.
func parseRetryAfter(v string) (after time.Duration, ok bool) {
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.ParseFloat(v, 64); err == nil {
		if math.IsNaN(secs) || secs < 0 {
			return 0, false
		}
		if secs > maxRetryAfter.Seconds() {
			return maxRetryAfter, true
		}
		return time.Duration(secs * float64(time.Second)), true
	}
	if t, err := http.ParseTime(v); err == nil {
		d := time.Until(t)
		if d <= 0 {
			return 0, false
		}
		return min(d, maxRetryAfter), true
	}
	return 0, false
}
