package gplusapi

import (
	"fmt"
	"html"
	"strconv"
	"strings"
)

// The live Google+ exposed profiles as HTML pages — the paper's crawler
// made "HTTP requests to publicly available user profile pages" and
// scraped them. gplusd can serve this HTML view (?alt=html) and the
// client can parse it, exercising the scrape path end to end. The markup
// is a compact, microdata-style document; RenderProfileHTML and
// ParseProfileHTML are exact inverses for valid profiles.

// attrEscape escapes a string for use inside a double-quoted attribute.
// Beyond the standard HTML escapes it encodes '=', so that no rendered
// value can ever contain an attribute-marker pattern (name=") — the
// property the scraper's anchored attribute search relies on.
func attrEscape(s string) string {
	return strings.ReplaceAll(html.EscapeString(s), "=", "&#61;")
}

// RenderProfileHTML renders the public profile page markup.
func RenderProfileHTML(doc *ProfileDoc) []byte {
	var b strings.Builder
	b.Grow(512)
	b.WriteString("<!DOCTYPE html>\n<html><head><title>")
	b.WriteString(html.EscapeString(doc.Name))
	b.WriteString(" - Google+</title></head>\n<body>\n")
	fmt.Fprintf(&b, "<div id=\"profile\" data-id=\"%s\" data-in=\"%d\" data-out=\"%d\">\n",
		attrEscape(doc.ID), doc.InCircleCount, doc.OutCircleCount)
	fmt.Fprintf(&b, "<h1 class=\"name\">%s</h1>\n", html.EscapeString(doc.Name))
	if doc.Gender != "" {
		fmt.Fprintf(&b, "<span class=\"gender\">%s</span>\n", html.EscapeString(doc.Gender))
	}
	if doc.Relationship != "" {
		fmt.Fprintf(&b, "<span class=\"relationship\">%s</span>\n", html.EscapeString(doc.Relationship))
	}
	if doc.Place != nil {
		fmt.Fprintf(&b, "<div class=\"place\" data-lat=\"%g\" data-lon=\"%g\" data-country=\"%s\">%s</div>\n",
			doc.Place.Lat, doc.Place.Lon, attrEscape(doc.Place.Country), html.EscapeString(doc.Place.Name))
	}
	if len(doc.PlacesLived) > 0 {
		b.WriteString("<ul class=\"places\">\n")
		for _, place := range doc.PlacesLived {
			fmt.Fprintf(&b, "<li>%s</li>\n", html.EscapeString(place))
		}
		b.WriteString("</ul>\n")
	}
	if doc.Occupation != "" {
		fmt.Fprintf(&b, "<span class=\"occupation\" data-code=\"%s\"></span>\n", attrEscape(doc.Occupation))
	}
	b.WriteString("<ul class=\"fields\">\n")
	for _, f := range doc.Fields {
		fmt.Fprintf(&b, "<li>%s</li>\n", html.EscapeString(f))
	}
	b.WriteString("</ul>\n</div>\n</body></html>\n")
	return []byte(b.String())
}

// ParseProfileHTML extracts a ProfileDoc from profile-page markup
// produced by RenderProfileHTML. It fails loudly on markup that lacks
// the profile container or mandatory attributes.
func ParseProfileHTML(page []byte) (*ProfileDoc, error) {
	s := string(page)
	// The profile container nests other divs (the place marker), so its
	// extent runs to the end of the body rather than the first </div>.
	root, err := sliceBetween(s, "<div id=\"profile\"", "</body>")
	if err != nil {
		return nil, fmt.Errorf("gplusapi: profile container: %w", err)
	}
	doc := &ProfileDoc{}
	if doc.ID, err = attrValue(root, "data-id"); err != nil {
		return nil, err
	}
	if doc.ID == "" {
		return nil, fmt.Errorf("gplusapi: empty profile id")
	}
	inRaw, err := attrValue(root, "data-in")
	if err != nil {
		return nil, err
	}
	outRaw, err := attrValue(root, "data-out")
	if err != nil {
		return nil, err
	}
	if doc.InCircleCount, err = strconv.Atoi(inRaw); err != nil {
		return nil, fmt.Errorf("gplusapi: bad in-count %q", inRaw)
	}
	if doc.OutCircleCount, err = strconv.Atoi(outRaw); err != nil {
		return nil, fmt.Errorf("gplusapi: bad out-count %q", outRaw)
	}

	name, err := textOf(root, "<h1 class=\"name\">", "</h1>")
	if err != nil {
		return nil, err
	}
	doc.Name = html.UnescapeString(name)

	if g, err := textOf(root, "<span class=\"gender\">", "</span>"); err == nil {
		doc.Gender = html.UnescapeString(g)
	}
	if r, err := textOf(root, "<span class=\"relationship\">", "</span>"); err == nil {
		doc.Relationship = html.UnescapeString(r)
	}
	if placeTag, err := sliceBetween(root, "<div class=\"place\"", "</div>"); err == nil {
		place := &PlaceDoc{}
		latRaw, err := attrValue(placeTag, "data-lat")
		if err != nil {
			return nil, err
		}
		lonRaw, err := attrValue(placeTag, "data-lon")
		if err != nil {
			return nil, err
		}
		if place.Lat, err = strconv.ParseFloat(latRaw, 64); err != nil {
			return nil, fmt.Errorf("gplusapi: bad latitude %q", latRaw)
		}
		if place.Lon, err = strconv.ParseFloat(lonRaw, 64); err != nil {
			return nil, fmt.Errorf("gplusapi: bad longitude %q", lonRaw)
		}
		if place.Country, err = attrValue(placeTag, "data-country"); err != nil {
			return nil, err
		}
		if i := strings.IndexByte(placeTag, '>'); i >= 0 {
			place.Name = html.UnescapeString(placeTag[i+1:])
		}
		doc.Place = place
	}
	if list, err := sliceBetween(root, "<ul class=\"places\">", "</ul>"); err == nil {
		doc.PlacesLived = listItems(list)
	}
	if occTag, err := sliceBetween(root, "<span class=\"occupation\"", "</span>"); err == nil {
		if doc.Occupation, err = attrValue(occTag, "data-code"); err != nil {
			return nil, err
		}
	}

	if list, err := sliceBetween(root, "<ul class=\"fields\">", "</ul>"); err == nil {
		doc.Fields = listItems(list)
	}
	return doc, nil
}

// listItems extracts the unescaped text of every <li> in a list slice.
func listItems(list string) []string {
	var out []string
	rest := list
	for {
		item, err := sliceBetween(rest, "<li>", "</li>")
		if err != nil {
			break
		}
		out = append(out, html.UnescapeString(item))
		idx := strings.Index(rest, "</li>")
		rest = rest[idx+len("</li>"):]
	}
	return out
}

// sliceBetween returns the text between the first occurrence of open
// and the following occurrence of close (exclusive).
func sliceBetween(s, open, close string) (string, error) {
	i := strings.Index(s, open)
	if i < 0 {
		return "", fmt.Errorf("marker %q not found", open)
	}
	rest := s[i+len(open):]
	j := strings.Index(rest, close)
	if j < 0 {
		return "", fmt.Errorf("closing %q not found", close)
	}
	return rest[:j], nil
}

// attrValue extracts a double-quoted attribute value from a tag slice.
// The marker is anchored on a leading space so that attribute-like text
// inside a value cannot match: rendered values are HTML-escaped, so the
// raw '"' required by the marker can never occur within a value. The
// returned value is unescaped.
func attrValue(tag, name string) (string, error) {
	marker := " " + name + "=\""
	i := strings.Index(tag, marker)
	if i < 0 {
		return "", fmt.Errorf("gplusapi: attribute %q not found", name)
	}
	rest := tag[i+len(marker):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return "", fmt.Errorf("gplusapi: attribute %q unterminated", name)
	}
	return html.UnescapeString(rest[:j]), nil
}

// textOf returns the text content between an opening tag and its close.
func textOf(s, open, close string) (string, error) {
	return sliceBetween(s, open, close)
}
