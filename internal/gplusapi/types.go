// Package gplusapi defines the wire protocol between the gplusd service
// simulator and the crawler: the JSON documents served for profile pages
// and paginated circle lists, plus an HTTP client with retry/backoff.
package gplusapi

import (
	"gplus/internal/geo"
	"gplus/internal/profile"
)

// CircleDir selects which circle list of a user to page through.
type CircleDir string

// The two public circle lists of a profile page (§2.1): "in" is the
// "Have user in circles" list (followers); "out" is "In user's circles"
// (followees).
const (
	CircleIn  CircleDir = "in"
	CircleOut CircleDir = "out"
)

// ProfileDoc is the JSON document served for a public profile page. Only
// publicly visible fields are populated, exactly as the live service
// exposed them to the paper's crawler.
type ProfileDoc struct {
	ID   string `json:"id"`
	Name string `json:"name"`
	// Fields lists the wire codes of the publicly visible attributes.
	Fields []string `json:"fields"`
	// Gender and Relationship carry the restricted-field labels when
	// public.
	Gender       string `json:"gender,omitempty"`
	Relationship string `json:"relationship,omitempty"`
	// PlacesLived lists every place the user has lived, when public; the
	// last entry is the current location (which Place geocodes).
	PlacesLived []string `json:"placesLived,omitempty"`
	// Place is the geocoded last "places lived" entry when public.
	Place *PlaceDoc `json:"place,omitempty"`
	// Occupation is the Table 5 occupation code when public.
	Occupation string `json:"occupation,omitempty"`
	// InCircleCount and OutCircleCount are the circle counts displayed on
	// the profile page. They reflect the true totals even when the circle
	// lists are truncated at the service cap, which is what lets the
	// crawler estimate lost edges (§2.2).
	InCircleCount  int `json:"inCircleCount"`
	OutCircleCount int `json:"outCircleCount"`
}

// PlaceDoc is the geocoded "places lived" marker: the free-text entry
// plus the map coordinates and country the service's geocoder resolved.
type PlaceDoc struct {
	Name    string  `json:"name"`
	Lat     float64 `json:"lat"`
	Lon     float64 `json:"lon"`
	Country string  `json:"country,omitempty"`
}

// CirclePage is one page of a circle list.
type CirclePage struct {
	IDs           []string `json:"ids"`
	NextPageToken string   `json:"nextPageToken,omitempty"`
}

// StatsDoc is the ground-truth summary served at /stats, used by tests
// and the crawl report to compare against what was collected.
type StatsDoc struct {
	Users int   `json:"users"`
	Edges int64 `json:"edges"`
}

// SeedDoc is served at /seed: the id of a well-known popular user to
// start a crawl from (the paper seeded its BFS at Mark Zuckerberg's
// profile, one of the most popular accounts at collection time).
type SeedDoc struct {
	ID string `json:"id"`
}

// ToProfile converts a wire document back into the analysis model.
// Values are only taken for fields the document also lists as public;
// an inconsistent document (value present, field not listed) degrades to
// the private view rather than leaking the value.
func (d *ProfileDoc) ToProfile() profile.Profile {
	p := profile.Profile{
		Name:              d.Name,
		DeclaredInDegree:  d.InCircleCount,
		DeclaredOutDegree: d.OutCircleCount,
	}
	for _, code := range d.Fields {
		if a, ok := profile.AttrFromWireCode(code); ok {
			p.Public = p.Public.With(a)
		}
	}
	if p.Public.Has(profile.AttrGender) {
		p.Gender = profile.ParseGender(d.Gender)
	}
	if p.Public.Has(profile.AttrRelationship) {
		p.Relationship = profile.ParseRelationship(d.Relationship)
	}
	if p.Public.Has(profile.AttrOccupation) {
		p.Occupation = profile.ParseOccupation(d.Occupation)
	}
	if p.Public.Has(profile.AttrPlacesLived) {
		p.PlacesLived = append([]string(nil), d.PlacesLived...)
		if d.Place != nil {
			p.Place = d.Place.Name
			p.Loc = geo.Point{Lat: d.Place.Lat, Lon: d.Place.Lon}
			p.CountryCode = d.Place.Country
		}
	}
	return p
}

// FromProfile renders the public view of a profile as a wire document.
func FromProfile(id string, p *profile.Profile) ProfileDoc {
	d := ProfileDoc{
		ID:             id,
		Name:           p.Name,
		InCircleCount:  p.DeclaredInDegree,
		OutCircleCount: p.DeclaredOutDegree,
	}
	for _, a := range profile.AllAttrs() {
		if p.Public.Has(a) {
			d.Fields = append(d.Fields, a.WireCode())
		}
	}
	if p.Public.Has(profile.AttrGender) && p.Gender != profile.GenderUnknown {
		d.Gender = p.Gender.String()
	}
	if p.Public.Has(profile.AttrRelationship) && p.Relationship != profile.RelUnknown {
		d.Relationship = p.Relationship.String()
	}
	if p.Public.Has(profile.AttrPlacesLived) {
		d.PlacesLived = append([]string(nil), p.PlacesLived...)
		d.Place = &PlaceDoc{
			Name:    p.Place,
			Lat:     p.Loc.Lat,
			Lon:     p.Loc.Lon,
			Country: p.CountryCode,
		}
	}
	if p.Public.Has(profile.AttrOccupation) {
		d.Occupation = p.Occupation.Code()
	}
	return d
}
