package gplusapi

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"gplus/internal/obs"
)

func newTestClient(ts *httptest.Server) *Client {
	return &Client{
		BaseURL:     ts.URL,
		HTTPClient:  ts.Client(),
		CrawlerID:   "test-worker",
		BackoffBase: time.Millisecond,
		MaxRetries:  3,
	}
}

func TestClientFetchEndpoints(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /people/{id}", func(w http.ResponseWriter, r *http.Request) {
		if got := r.Header.Get("X-Crawler-Id"); got != "test-worker" {
			t.Errorf("crawler id header = %q", got)
		}
		w.Write([]byte(`{"id":"u1","name":"n","fields":["name"],"inCircleCount":3,"outCircleCount":4}`))
	})
	mux.HandleFunc("GET /people/{id}/circles/{dir}", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("pageToken") == "" {
			w.Write([]byte(`{"ids":["a","b"],"nextPageToken":"2"}`))
			return
		}
		w.Write([]byte(`{"ids":["c"]}`))
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"users":7,"edges":9}`))
	})
	mux.HandleFunc("GET /seed", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"id":"top"}`))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	c := newTestClient(ts)
	ctx := context.Background()

	doc, err := c.FetchProfile(ctx, "u1")
	if err != nil || doc.ID != "u1" || doc.InCircleCount != 3 {
		t.Fatalf("FetchProfile = %+v, %v", doc, err)
	}
	page, err := c.FetchCircle(ctx, "u1", CircleOut, "", 10)
	if err != nil || len(page.IDs) != 2 || page.NextPageToken != "2" {
		t.Fatalf("FetchCircle = %+v, %v", page, err)
	}
	page, err = c.FetchCircle(ctx, "u1", CircleIn, "2", 0)
	if err != nil || len(page.IDs) != 1 || page.NextPageToken != "" {
		t.Fatalf("FetchCircle page 2 = %+v, %v", page, err)
	}
	st, err := c.FetchStats(ctx)
	if err != nil || st.Users != 7 || st.Edges != 9 {
		t.Fatalf("FetchStats = %+v, %v", st, err)
	}
	seed, err := c.FetchSeed(ctx)
	if err != nil || seed != "top" {
		t.Fatalf("FetchSeed = %q, %v", seed, err)
	}
}

func TestClientRetriesTransientThenSucceeds(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0.001")
			http.Error(w, "flaky", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"id":"u","name":"n","inCircleCount":0,"outCircleCount":0}`))
	}))
	defer ts.Close()
	c := newTestClient(ts)
	doc, err := c.FetchProfile(context.Background(), "u")
	if err != nil {
		t.Fatalf("FetchProfile: %v", err)
	}
	if doc.ID != "u" || calls.Load() != 3 {
		t.Fatalf("doc=%+v calls=%d", doc, calls.Load())
	}
}

func TestClientGivesUpAfterMaxRetries(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "always down", http.StatusBadGateway)
	}))
	defer ts.Close()
	c := newTestClient(ts)
	_, err := c.FetchProfile(context.Background(), "u")
	if err == nil {
		t.Fatal("expected failure after retries")
	}
	if got := calls.Load(); got != int32(c.MaxRetries)+1 {
		t.Errorf("server saw %d calls, want %d", got, c.MaxRetries+1)
	}
}

func TestClientNotFoundIsTerminal(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.NotFound(w, r)
	}))
	defer ts.Close()
	c := newTestClient(ts)
	_, err := c.FetchProfile(context.Background(), "nope")
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if calls.Load() != 1 {
		t.Errorf("404 retried: %d calls", calls.Load())
	}
}

func TestClientUnexpectedStatusIsTerminal(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "teapot", http.StatusTeapot)
	}))
	defer ts.Close()
	c := newTestClient(ts)
	_, err := c.FetchProfile(context.Background(), "u")
	if err == nil || errors.Is(err, ErrNotFound) || isRetryable(err) {
		t.Fatalf("err = %v, want terminal non-404 error", err)
	}
}

func TestClientContextCancelDuringBackoff(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		http.Error(w, "slow down", http.StatusTooManyRequests)
	}))
	defer ts.Close()
	c := newTestClient(ts)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.FetchProfile(ctx, "u")
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancellation ignored Retry-After sleep: %v", elapsed)
	}
}

func TestClientFetchProfileHTMLParsesAndRetries(t *testing.T) {
	var calls atomic.Int32
	page := RenderProfileHTML(&ProfileDoc{ID: "u9", Name: "nine", Fields: []string{"name"}})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("alt") != "html" {
			t.Errorf("missing alt=html: %s", r.URL)
		}
		if calls.Add(1) == 1 {
			http.Error(w, "hiccup", http.StatusInternalServerError)
			return
		}
		w.Write(page)
	}))
	defer ts.Close()
	c := newTestClient(ts)
	doc, err := c.FetchProfileHTML(context.Background(), "u9")
	if err != nil {
		t.Fatalf("FetchProfileHTML: %v", err)
	}
	if doc.ID != "u9" || doc.Name != "nine" {
		t.Fatalf("doc = %+v", doc)
	}
	if calls.Load() != 2 {
		t.Errorf("calls = %d, want 2 (one retry)", calls.Load())
	}
}

func TestClientDefaults(t *testing.T) {
	c := &Client{}
	if c.httpClient() == nil || c.maxRetries() != 5 || c.backoffBase() != 50*time.Millisecond {
		t.Error("defaults not applied")
	}
	if c.maxBackoff() != 30*time.Second {
		t.Errorf("default MaxBackoff = %v, want 30s", c.maxBackoff())
	}
}

func TestBackoffDelayClampedAtAllAttempts(t *testing.T) {
	// Regression: backoffBase << (attempt-1) overflowed to a negative
	// Duration around attempt 38, and rand.Int64N panicked on the
	// negative bound. Every attempt count must now yield a positive
	// delay no larger than 1.5x MaxBackoff (full jitter's upper edge).
	c := &Client{BackoffBase: 50 * time.Millisecond, MaxBackoff: time.Second}
	for attempt := 1; attempt <= 200; attempt++ {
		d := c.backoffDelay(attempt, nil)
		if d <= 0 || d > c.MaxBackoff+c.MaxBackoff/2 {
			t.Fatalf("attempt %d: delay %v outside (0, 1.5s]", attempt, d)
		}
	}
}

func TestBackoffDelayHonorsRetryAfterHint(t *testing.T) {
	c := &Client{BackoffBase: time.Millisecond, MaxBackoff: 10 * time.Second}
	hint := &retryAfterError{status: 429, after: 2 * time.Second}
	if d := c.backoffDelay(1, hint); d < hint.after {
		t.Errorf("delay %v ignores the %v Retry-After hint", d, hint.after)
	}
	// Hints never push the delay past MaxBackoff: a hostile server must
	// not be able to stall the crawl arbitrarily long.
	c.MaxBackoff = time.Millisecond
	if d := c.backoffDelay(1, hint); d > c.MaxBackoff {
		t.Errorf("delay %v exceeds MaxBackoff %v despite clamp", d, c.MaxBackoff)
	}
}

func TestClientLargeRetryBudgetDoesNotPanic(t *testing.T) {
	// A caller-set MaxRetries well past the shift-overflow point must
	// grind through every attempt and give up cleanly, not panic.
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "0.0001")
		http.Error(w, "always down", http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	c := newTestClient(ts)
	c.MaxRetries = 64
	c.BackoffBase = time.Microsecond
	c.MaxBackoff = time.Millisecond
	start := time.Now()
	if _, err := c.FetchProfile(context.Background(), "u"); err == nil {
		t.Fatal("expected failure after exhausting retries")
	}
	if got := calls.Load(); got != 65 {
		t.Errorf("server saw %d calls, want 65", got)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("retry loop took %v; MaxBackoff clamp not applied", elapsed)
	}
}

func TestClientMetrics(t *testing.T) {
	var hits atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /people/{id}", func(w http.ResponseWriter, r *http.Request) {
		// First attempt gets a retryable 503; the retry succeeds.
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", "0.001")
			http.Error(w, "flaky", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"id":"u1"}`))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	reg := obs.NewRegistry()
	c := newTestClient(ts)
	c.Metrics = reg
	if _, err := c.FetchProfile(context.Background(), "u1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FetchProfile(context.Background(), "u1"); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if got := snap.Counters[`gplusapi_responses_total{endpoint="profile",code="200"}`]; got != 2 {
		t.Errorf("200 counter = %d, want 2", got)
	}
	if got := snap.Counters[`gplusapi_responses_total{endpoint="profile",code="503"}`]; got != 1 {
		t.Errorf("503 counter = %d, want 1", got)
	}
	if got := snap.Counters[`gplusapi_retries_total{endpoint="profile"}`]; got != 1 {
		t.Errorf("retry counter = %d, want 1", got)
	}
	h := snap.Histograms[`gplusapi_request_seconds{endpoint="profile"}`]
	if h.Count != 3 {
		t.Errorf("latency histogram count = %d, want 3 (two fetches, one retry)", h.Count)
	}
}

func TestClientRetriesConnectionReset(t *testing.T) {
	// The first two attempts die at the transport layer — the server
	// hijacks the connection and slams it shut — and the third serves.
	// Chaos-mode resets and real network flaps look exactly like this.
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			conn, _, err := w.(http.Hijacker).Hijack()
			if err != nil {
				t.Fatalf("hijack: %v", err)
			}
			conn.Close()
			return
		}
		w.Write([]byte(`{"id":"u","name":"n","inCircleCount":0,"outCircleCount":0}`))
	}))
	defer ts.Close()
	c := newTestClient(ts)
	// Hijacked connections must not be reused; force fresh dials.
	c.HTTPClient = &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	doc, err := c.FetchProfile(context.Background(), "u")
	if err != nil {
		t.Fatalf("FetchProfile did not survive connection resets: %v", err)
	}
	if doc.ID != "u" || calls.Load() != 3 {
		t.Fatalf("doc=%+v calls=%d", doc, calls.Load())
	}
}

func TestClientRetriesTornBody(t *testing.T) {
	// A 200 whose body is cut mid-stream (Content-Length promises more
	// than arrives) is a torn read, not a permanent failure.
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Content-Length", "500")
			w.Write([]byte(`{"id":"u","na`))
			return
		}
		w.Write([]byte(`{"id":"u","name":"n","inCircleCount":0,"outCircleCount":0}`))
	}))
	defer ts.Close()
	c := newTestClient(ts)
	doc, err := c.FetchProfile(context.Background(), "u")
	if err != nil {
		t.Fatalf("FetchProfile did not survive a torn body: %v", err)
	}
	if doc.ID != "u" || calls.Load() != 2 {
		t.Fatalf("doc=%+v calls=%d", doc, calls.Load())
	}
}

func TestClientCancellationIsNotRetried(t *testing.T) {
	// A transport error caused by the caller's own cancellation must not
	// be wrapped as transient: retrying would only delay shutdown.
	var calls atomic.Int32
	release := make(chan struct{})
	defer close(release)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		select {
		case <-r.Context().Done():
		case <-release:
		}
	}))
	defer ts.Close()
	c := newTestClient(ts)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.FetchProfile(ctx, "u")
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if isRetryable(err) {
		t.Errorf("cancellation classified retryable: %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("cancelled request retried: %d calls", got)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
}

func TestClientNilMetricsIsNoOp(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /people/{id}", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"id":"u1"}`))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	c := newTestClient(ts) // Metrics nil
	if _, err := c.FetchProfile(context.Background(), "u1"); err != nil {
		t.Fatal(err)
	}
}
