package gplusapi

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"gplus/internal/resilience"
)

// --- Retry-After parsing: seconds, HTTP-date, garbage ---

func TestParseRetryAfterSeconds(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want time.Duration
		ok   bool
	}{
		{"2", 2 * time.Second, true},
		{"0", 0, true},
		{"0.25", 250 * time.Millisecond, true},
		{"-1", 0, false},
		{"-0.5", 0, false},
	} {
		got, ok := parseRetryAfter(tc.in)
		if got != tc.want || ok != tc.ok {
			t.Errorf("parseRetryAfter(%q) = %v, %v; want %v, %v", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}

func TestParseRetryAfterHTTPDate(t *testing.T) {
	future := time.Now().Add(3 * time.Second).UTC().Format(http.TimeFormat)
	got, ok := parseRetryAfter(future)
	if !ok || got <= 0 || got > 4*time.Second {
		t.Fatalf("parseRetryAfter(future date) = %v, %v; want ≈3s, true", got, ok)
	}
	past := time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat)
	if got, ok := parseRetryAfter(past); ok || got != 0 {
		t.Fatalf("parseRetryAfter(past date) = %v, %v; want 0, false", got, ok)
	}
}

func TestParseRetryAfterGarbage(t *testing.T) {
	for _, in := range []string{"", "soon", "12 parsecs", "NaN", "Mon, 99 Foo 2026"} {
		if got, ok := parseRetryAfter(in); ok || got != 0 {
			t.Errorf("parseRetryAfter(%q) = %v, %v; want 0, false", in, got, ok)
		}
	}
	// Absurdly large hints are clamped rather than overflowing Duration.
	if got, ok := parseRetryAfter("1e300"); !ok || got != maxRetryAfter {
		t.Errorf("parseRetryAfter(1e300) = %v, %v; want clamp to %v", got, ok, maxRetryAfter)
	}
}

func TestClientFallsBackToBackoffOnGarbageRetryAfter(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "garbage")
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	c := newTestClient(ts)
	c.MaxRetries = 2
	_, err := c.FetchStats(context.Background())
	if err == nil {
		t.Fatal("want failure against an always-503 server")
	}
	// A garbage header must not disable retries (the old behavior
	// treated it as hint 0 = ignore, which still retried; the real risk
	// is a parse that panics or a hint that sticks at a bogus value).
	if got := calls.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3 (1 + 2 retries)", got)
	}
}

// --- backoffDelay property tests ---

// TestBackoffDelayProperties drives adversarial MaxRetries/BackoffBase/
// MaxBackoff combinations through every attempt number and asserts the
// satellite invariants: never negative, never above MaxBackoff, and the
// sampled delay lies in [ceil/2, ceil] for the deterministic, monotone
// ceiling — which makes consecutive unclamped attempts monotone
// non-decreasing pointwise (attempt k's upper edge is attempt k+1's
// lower edge, so no sample at k can exceed a sample at k+1).
func TestBackoffDelayProperties(t *testing.T) {
	cases := []struct {
		base, maxB time.Duration
	}{
		{0, 0},                          // all defaults
		{time.Nanosecond, time.Second},  // minimal base
		{50 * time.Millisecond, 0},      // default cap
		{time.Hour, time.Second},        // base above the cap
		{-time.Second, -time.Second},    // nonsense → defaults
		{1, 1},                          // 1ns everything
		{time.Millisecond, time.Minute}, // long doubling run
		{3 * time.Millisecond, 25 * time.Millisecond}, // clamp mid-range, not a power of two
	}
	for _, tc := range cases {
		c := &Client{BackoffBase: tc.base, MaxBackoff: tc.maxB}
		prevCeil := time.Duration(0)
		for attempt := 1; attempt <= 150; attempt++ {
			ceil := c.backoffCeil(attempt)
			if ceil < prevCeil {
				t.Fatalf("base=%v max=%v attempt=%d: ceiling %v < previous %v (not monotone)",
					tc.base, tc.maxB, attempt, ceil, prevCeil)
			}
			if ceil > c.maxBackoff() {
				t.Fatalf("base=%v max=%v attempt=%d: ceiling %v above MaxBackoff %v",
					tc.base, tc.maxB, attempt, ceil, c.maxBackoff())
			}
			prevCeil = ceil
			for trial := 0; trial < 20; trial++ {
				d := c.backoffDelay(attempt, nil)
				if d < 0 {
					t.Fatalf("base=%v max=%v attempt=%d: negative delay %v", tc.base, tc.maxB, attempt, d)
				}
				if d > c.maxBackoff() {
					t.Fatalf("base=%v max=%v attempt=%d: delay %v above MaxBackoff %v",
						tc.base, tc.maxB, attempt, d, c.maxBackoff())
				}
				if d < ceil/2 || d > ceil {
					t.Fatalf("base=%v max=%v attempt=%d: delay %v outside [%v, %v]",
						tc.base, tc.maxB, attempt, d, ceil/2, ceil)
				}
			}
		}
	}
}

func TestBackoffDelayHintNeverExceedsMaxBackoff(t *testing.T) {
	c := &Client{BackoffBase: time.Millisecond, MaxBackoff: 20 * time.Millisecond}
	for _, hint := range []time.Duration{-time.Second, 0, time.Millisecond, time.Hour} {
		err := &retryAfterError{status: 503, after: hint}
		for attempt := 1; attempt <= 40; attempt++ {
			d := c.backoffDelay(attempt, err)
			if d < 0 || d > c.MaxBackoff {
				t.Fatalf("hint=%v attempt=%d: delay %v outside [0, %v]", hint, attempt, d, c.MaxBackoff)
			}
		}
	}
}

// --- retry budget wiring ---

func TestClientRetryBudgetExhaustion(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	c := newTestClient(ts)
	c.MaxRetries = 10
	// Burst 2 with a negligible trickle: exactly two retries available.
	c.RetryBudget = resilience.NewRetryBudget(resilience.BudgetOptions{Ratio: 0.1, MinPerSec: 1e-9, Burst: 2}, nil, "t")
	_, err := c.FetchStats(context.Background())
	if err == nil {
		t.Fatal("want failure")
	}
	if !errors.Is(err, resilience.ErrRetryBudgetExhausted) {
		t.Fatalf("err = %v, want wrapped ErrRetryBudgetExhausted", err)
	}
	if !IsOverload(err) {
		t.Fatalf("IsOverload(%v) = false, want true", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("wire attempts = %d, want 3 (first + 2 budgeted retries)", got)
	}
}

func TestClientBudgetRefillsOnSuccess(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"users":1,"edges":1}`))
	}))
	defer ts.Close()
	c := newTestClient(ts)
	b := resilience.NewRetryBudget(resilience.BudgetOptions{Ratio: 0.5, MinPerSec: 1e-9, Burst: 4}, nil, "t")
	for b.TrySpend() { // drain
	}
	c.RetryBudget = b
	for i := 0; i < 4; i++ {
		if _, err := c.FetchStats(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.Tokens(); got < 1.9 {
		t.Fatalf("tokens after 4 successes at ratio 0.5 = %v, want ≈2", got)
	}
}

// --- circuit breaker wiring ---

func TestClientBreakerFailsFastAfterTrip(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "broken", http.StatusInternalServerError)
	}))
	defer ts.Close()
	c := newTestClient(ts)
	c.MaxBackoff = time.Millisecond // keep breaker-cooldown hints from stalling the test
	c.Breakers = resilience.NewBreakerGroup(resilience.BreakerOptions{
		ConsecutiveFailures: 2,
		Cooldown:            time.Hour,
	}, nil, "t")
	// Two wire failures trip the breaker; the remaining retries of the
	// same operation are denied without touching the wire.
	if _, err := c.FetchStats(context.Background()); err == nil {
		t.Fatal("want failure")
	}
	if got := c.Breakers.Get("stats").State(); got != resilience.BreakerOpen {
		t.Fatalf("breaker state = %v, want open after 2 consecutive failures", got)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("wire attempts = %d, want 2 (breaker open stops the rest)", got)
	}
	before := calls.Load()
	_, err := c.FetchStats(context.Background())
	if err == nil {
		t.Fatal("open breaker must fail the call")
	}
	var oe *resilience.OpenError
	if !errors.As(err, &oe) {
		t.Fatalf("err = %v, want *resilience.OpenError", err)
	}
	if !IsOverload(err) {
		t.Fatal("breaker denial must classify as overload")
	}
	if got := calls.Load(); got != before {
		t.Fatalf("open breaker made %d wire attempts, want 0", got-before)
	}
	// Endpoints break independently: /seed still works... fails, but is
	// allowed on the wire.
	if _, err := c.FetchSeed(context.Background()); err == nil {
		t.Fatal("seed endpoint should still reach the failing server")
	}
	if got := calls.Load(); got == before {
		t.Fatal("seed endpoint should not share the stats breaker")
	}
}

func TestClientBreakerRecoversThroughProbe(t *testing.T) {
	var broken atomic.Bool
	broken.Store(true)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if broken.Load() {
			http.Error(w, "broken", http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{"users":1,"edges":1}`))
	}))
	defer ts.Close()
	c := newTestClient(ts)
	c.MaxRetries = 1
	c.MaxBackoff = time.Millisecond
	c.Breakers = resilience.NewBreakerGroup(resilience.BreakerOptions{
		ConsecutiveFailures: 1,
		Cooldown:            10 * time.Millisecond,
	}, nil, "t")
	if _, err := c.FetchStats(context.Background()); err == nil {
		t.Fatal("want failure")
	}
	broken.Store(false)
	time.Sleep(15 * time.Millisecond) // cooldown elapses → probe allowed
	if _, err := c.FetchStats(context.Background()); err != nil {
		t.Fatalf("probe should succeed and close the breaker: %v", err)
	}
	if got := c.Breakers.Get("stats").State(); got != resilience.BreakerClosed {
		t.Fatalf("breaker state = %v, want closed after good probe", got)
	}
}

// --- deadline propagation + attempt timeouts ---

func TestClientSendsDeadlineHeader(t *testing.T) {
	headers := make(chan string, 1)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		headers <- r.Header.Get(resilience.DeadlineHeader)
		w.Write([]byte(`{"users":1,"edges":1}`))
	}))
	defer ts.Close()
	c := newTestClient(ts)
	c.AttemptTimeout = 250 * time.Millisecond
	if _, err := c.FetchStats(context.Background()); err != nil {
		t.Fatal(err)
	}
	v := <-headers
	ms, err := strconv.ParseInt(v, 10, 64)
	if err != nil || ms <= 0 || ms > 250 {
		t.Fatalf("deadline header = %q, want 0 < ms ≤ 250", v)
	}
}

func TestClientAttemptTimeoutRetriesThenSucceeds(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			time.Sleep(300 * time.Millisecond) // blow the first attempt's budget
		}
		w.Write([]byte(`{"users":1,"edges":1}`))
	}))
	defer ts.Close()
	c := newTestClient(ts)
	c.AttemptTimeout = 50 * time.Millisecond
	c.MaxRetries = 3
	var overloads atomic.Int32
	c.Feedback = feedbackFunc{onOverload: func() { overloads.Add(1) }}
	doc, err := c.FetchStats(context.Background())
	if err != nil || doc == nil {
		t.Fatalf("FetchStats = %v, %v; want success on retry", doc, err)
	}
	if got := calls.Load(); got < 2 {
		t.Fatalf("wire attempts = %d, want ≥ 2 (timeout then success)", got)
	}
	if overloads.Load() == 0 {
		t.Fatal("attempt deadline expiry should signal overload to the AIMD gate")
	}
}

func TestClientParentCancelIsTerminal(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		time.Sleep(200 * time.Millisecond)
		w.Write([]byte(`{"users":1,"edges":1}`))
	}))
	defer ts.Close()
	c := newTestClient(ts)
	c.AttemptTimeout = time.Second
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := c.FetchStats(ctx)
	if err == nil {
		t.Fatal("want failure")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("wire attempts = %d; an expired operation context must not retry", got)
	}
}

// --- AIMD feedback wiring ---

type feedbackFunc struct {
	onSuccess  func()
	onOverload func()
}

func (f feedbackFunc) RecordSuccess() {
	if f.onSuccess != nil {
		f.onSuccess()
	}
}

func (f feedbackFunc) RecordOverload() {
	if f.onOverload != nil {
		f.onOverload()
	}
}

func TestClientFeedbackSignals(t *testing.T) {
	var mode atomic.Int32 // 0: ok, 1: 503, 2: 404, 3: 500
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch mode.Load() {
		case 1:
			http.Error(w, "overloaded", http.StatusServiceUnavailable)
		case 2:
			http.Error(w, "gone", http.StatusNotFound)
		case 3:
			http.Error(w, "bug", http.StatusInternalServerError)
		default:
			w.Write([]byte(`{"users":1,"edges":1}`))
		}
	}))
	defer ts.Close()
	var successes, overloads atomic.Int32
	c := newTestClient(ts)
	c.MaxRetries = 1
	c.MaxBackoff = time.Millisecond
	c.Feedback = feedbackFunc{
		onSuccess:  func() { successes.Add(1) },
		onOverload: func() { overloads.Add(1) },
	}
	c.FetchStats(context.Background())
	if successes.Load() != 1 || overloads.Load() != 0 {
		t.Fatalf("after 200: successes=%d overloads=%d", successes.Load(), overloads.Load())
	}
	mode.Store(1)
	c.FetchStats(context.Background()) // 1 attempt + 1 retry, both 503
	if overloads.Load() != 2 {
		t.Fatalf("each 503 should record overload, got %d", overloads.Load())
	}
	mode.Store(2)
	c.FetchProfile(context.Background(), "nope")
	if successes.Load() != 2 {
		t.Fatalf("404 should count as service health, successes=%d", successes.Load())
	}
	mode.Store(3)
	c.FetchStats(context.Background())
	if overloads.Load() != 2 {
		t.Fatalf("a plain 500 is failure, not congestion; overloads=%d", overloads.Load())
	}
}

func TestIsOverloadClassification(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want bool
	}{
		{nil, false},
		{ErrNotFound, false},
		{errors.New("random"), false},
		{&retryAfterError{status: 429}, true},
		{&retryAfterError{status: 503}, true},
		{&retryAfterError{status: 500}, false},
		{&resilience.OpenError{Name: "x"}, true},
		{resilience.ErrRetryBudgetExhausted, true},
		{&transientError{err: context.DeadlineExceeded}, true},
		{&transientError{err: errors.New("conn reset")}, false},
	} {
		if got := IsOverload(tc.err); got != tc.want {
			t.Errorf("IsOverload(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}
