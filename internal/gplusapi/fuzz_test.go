package gplusapi

import (
	"reflect"
	"testing"
)

// FuzzParseProfileHTML checks that arbitrary markup never panics the
// scraper and that valid renderings always round trip.
func FuzzParseProfileHTML(f *testing.F) {
	p := samplePublicProfile()
	doc := FromProfile("1seed", &p)
	f.Add(string(RenderProfileHTML(&doc)))
	f.Add("")
	f.Add("<html><body></body></html>")
	f.Add(`<div id="profile" data-id="x" data-in="1" data-out="2"><h1 class="name">n</h1></body>`)
	f.Add(`<div id="profile" data-id=`)
	f.Fuzz(func(t *testing.T, page string) {
		got, err := ParseProfileHTML([]byte(page))
		if err != nil {
			return // malformed input rejected: fine
		}
		// Anything accepted must re-render and re-parse identically
		// (canonical-form idempotence).
		again, err := ParseProfileHTML(RenderProfileHTML(got))
		if err != nil {
			t.Fatalf("re-parse of rendered doc failed: %v", err)
		}
		if got.ID != again.ID || got.Name != again.Name || len(got.Fields) != len(again.Fields) {
			t.Fatalf("not idempotent:\n first %+v\n again %+v", got, again)
		}
	})
}

// FuzzToProfile checks the wire-to-model conversion tolerates arbitrary
// field codes and labels.
func FuzzToProfile(f *testing.F) {
	f.Add("name", "Male", "Single", "IT")
	f.Add("", "", "", "")
	f.Add("work_contact", "Blorp", "Whatever", "zz")
	f.Fuzz(func(t *testing.T, field, gender, rel, occ string) {
		doc := ProfileDoc{
			ID:           "1x",
			Name:         "n",
			Fields:       []string{field},
			Gender:       gender,
			Relationship: rel,
			Occupation:   occ,
		}
		p := doc.ToProfile()
		// Unknown inputs must degrade to zero values, never panic.
		if p.Public.Count() > 1 {
			t.Fatalf("one field code produced %d public attrs", p.Public.Count())
		}
		_ = p.IsTelUser()
		// Round-tripping the parsed profile must be stable.
		back := FromProfile(doc.ID, &p)
		p2 := back.ToProfile()
		if !reflect.DeepEqual(p, p2) {
			t.Fatalf("profile round trip unstable:\n %+v\n %+v", p, p2)
		}
	})
}
