package gplusapi

import (
	"reflect"
	"testing"

	"gplus/internal/geo"
	"gplus/internal/profile"
)

func samplePublicProfile() profile.Profile {
	p := profile.Profile{
		Name:              "user-0000042",
		Gender:            profile.GenderFemale,
		Relationship:      profile.RelComplicated,
		PlacesLived:       []string{"Rio de Janeiro", "Brazil"},
		Place:             "Brazil",
		Loc:               geo.Point{Lat: -19.9, Lon: -43.9},
		CountryCode:       "BR",
		Occupation:        profile.Blogger,
		DeclaredInDegree:  15000,
		DeclaredOutDegree: 120,
	}
	p.Public = p.Public.
		With(profile.AttrName).
		With(profile.AttrGender).
		With(profile.AttrRelationship).
		With(profile.AttrPlacesLived).
		With(profile.AttrOccupation).
		With(profile.AttrWorkContact)
	return p
}

func TestProfileRoundTrip(t *testing.T) {
	p := samplePublicProfile()
	doc := FromProfile("10000000000000000042X", &p)
	got := doc.ToProfile()
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, p)
	}
}

func TestFromProfileHidesPrivateFields(t *testing.T) {
	p := samplePublicProfile()
	// Withdraw gender and places lived from the public set; the values
	// stay in the struct (the service knows them) but must not serialize.
	p.Public = p.Public.Without(profile.AttrGender).Without(profile.AttrPlacesLived)
	doc := FromProfile("id", &p)
	if doc.Gender != "" {
		t.Errorf("private gender leaked: %q", doc.Gender)
	}
	if doc.Place != nil {
		t.Errorf("private place leaked: %+v", doc.Place)
	}
	for _, f := range doc.Fields {
		if f == profile.AttrGender.WireCode() || f == profile.AttrPlacesLived.WireCode() {
			t.Errorf("private field %q listed", f)
		}
	}
}

func TestFromProfileFieldCodes(t *testing.T) {
	p := samplePublicProfile()
	doc := FromProfile("id", &p)
	want := map[string]bool{
		"name": true, "gender": true, "relationship": true,
		"places_lived": true, "occupation": true, "work_contact": true,
	}
	if len(doc.Fields) != len(want) {
		t.Fatalf("fields = %v", doc.Fields)
	}
	for _, f := range doc.Fields {
		if !want[f] {
			t.Errorf("unexpected field code %q", f)
		}
	}
}

func TestToProfileUnknownCodesIgnored(t *testing.T) {
	doc := ProfileDoc{
		ID:     "x",
		Name:   "n",
		Fields: []string{"name", "hovercraft", "gender"},
		Gender: "Blorp",
	}
	p := doc.ToProfile()
	if p.Public.Count() != 2 {
		t.Errorf("public count = %d, want 2", p.Public.Count())
	}
	if p.Gender != profile.GenderUnknown {
		t.Errorf("unknown gender label parsed to %v", p.Gender)
	}
}

func TestWireCodeRoundTrip(t *testing.T) {
	for _, a := range profile.AllAttrs() {
		code := a.WireCode()
		if code == "" {
			t.Fatalf("attr %v has no wire code", a)
		}
		back, ok := profile.AttrFromWireCode(code)
		if !ok || back != a {
			t.Fatalf("wire code %q round trips to %v,%v", code, back, ok)
		}
	}
	if _, ok := profile.AttrFromWireCode("bogus"); ok {
		t.Error("bogus code resolved")
	}
}

func TestParseLabels(t *testing.T) {
	if profile.ParseGender("Male") != profile.GenderMale {
		t.Error("Male did not parse")
	}
	if profile.ParseGender("") != profile.GenderUnknown {
		t.Error("empty gender should be unknown")
	}
	for _, r := range profile.Relationships() {
		if profile.ParseRelationship(r.String()) != r {
			t.Errorf("relationship %v does not round trip", r)
		}
	}
	if profile.ParseOccupation("IT") != profile.IT {
		t.Error("IT did not parse")
	}
	if profile.ParseOccupation("zz") != profile.OccupationOther {
		t.Error("unknown occupation should map to Other")
	}
}
