package synth

import (
	"math"
	"math/rand/v2"
	"reflect"
	"sync"
	"testing"

	"gplus/internal/graph"
	"gplus/internal/profile"
	"gplus/internal/stats"
)

// testUniverse is generated once and shared across tests; it is treated
// as read-only.
var (
	testUniverseOnce sync.Once
	testUniverseVal  *Universe
)

func testUniverse(t *testing.T) *Universe {
	t.Helper()
	testUniverseOnce.Do(func() {
		u, err := Generate(DefaultConfig(60_000))
		if err != nil {
			panic(err)
		}
		testUniverseVal = u
	})
	return testUniverseVal
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(100).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Nodes = 0 },
		func(c *Config) { c.OutDegreeAlpha = 1 },
		func(c *Config) { c.OutDegreeMin = 0.5 },
		func(c *Config) { c.OutDegreeCap = 0 },
		func(c *Config) { c.CasualFraction = 1.5 },
		func(c *Config) { c.CasualDegreeMax = 0 },
		func(c *Config) { c.InWeightAlpha = 0 },
		func(c *Config) { c.OrdinaryWeightCap = 1 },
		func(c *Config) { c.CelebrityFraction = -0.1 },
		func(c *Config) { c.CelebrityWeightMax = 10 },
		func(c *Config) { c.CommunityMin = 1 },
		func(c *Config) { c.CommunityMax = c.CommunityMin - 1 },
		func(c *Config) { c.CommunityAffinity = 2 },
		func(c *Config) { c.ReciprocationLocal = -1 },
		func(c *Config) { c.CasualResponse = 1.1 },
		func(c *Config) { c.SocialDegree = 0 },
		func(c *Config) { c.PAShareMin = 0.9; c.PAShareMax = 0.1 },
		func(c *Config) { c.TriadicShare = -0.2 },
		func(c *Config) { c.LocatedFraction = 1.2 },
		func(c *Config) { c.TelUserBase = -0.1 },
	}
	for i, mutate := range mutations {
		c := DefaultConfig(100)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d not rejected", i)
		}
		if _, err := Generate(c); err == nil {
			t.Errorf("Generate accepted invalid config (mutation %d)", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig(3_000)
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Profiles, b.Profiles) {
		t.Error("profiles differ across identical configs")
	}
	if !reflect.DeepEqual(a.Graph, b.Graph) {
		t.Error("graphs differ across identical configs")
	}
	if !reflect.DeepEqual(a.IDs, b.IDs) {
		t.Error("IDs differ across identical configs")
	}
	cfg.Seed++
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Graph, c.Graph) {
		t.Error("different seeds produced identical graphs")
	}
}

func TestUserIDsUniqueAndOpaque(t *testing.T) {
	u := testUniverse(t)
	seen := make(map[string]bool, len(u.IDs))
	for _, id := range u.IDs {
		if len(id) != 21 || id[0] != '1' {
			t.Fatalf("malformed id %q", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestCalibrationStructural(t *testing.T) {
	u := testUniverse(t)
	g := u.Graph

	if avg := g.AvgDegree(); avg < 13 || avg > 20 {
		t.Errorf("avg degree = %.2f, want ~16.4 (band 13-20)", avg)
	}
	if rec := graph.GlobalReciprocity(g, 1); rec < 0.25 || rec > 0.45 {
		t.Errorf("global reciprocity = %.3f, want ~0.32 (band 0.25-0.45)", rec)
	}

	// Figure 4(a): the bulk of ordinary users keep high RR.
	rrs := graph.AllReciprocities(g, 1)
	over := 0
	for _, r := range rrs {
		if r > 0.6 {
			over++
		}
	}
	if frac := float64(over) / float64(len(rrs)); frac < 0.45 {
		t.Errorf("RR>0.6 fraction = %.3f, want >= 0.45 (paper ~0.6)", frac)
	}

	// Figure 4(b): a large minority of users with CC > 0.2.
	rng := rand.New(rand.NewPCG(7, 7))
	ccs := graph.SampleClustering(g, 10_000, rng, 1)
	over = 0
	for _, c := range ccs {
		if c > 0.2 {
			over++
		}
	}
	if frac := float64(over) / float64(len(ccs)); frac < 0.25 || frac > 0.65 {
		t.Errorf("CC>0.2 fraction = %.3f, want ~0.4 (band 0.25-0.65)", frac)
	}

	// The fully generated universe is almost entirely one giant SCC; the
	// paper's 70% figure arises from partial crawling, reproduced by the
	// crawler tests.
	scc := graph.SCC(g)
	if f := scc.GiantFraction(); f < 0.9 {
		t.Errorf("ground-truth giant SCC fraction = %.3f, want >= 0.9", f)
	}
}

func TestCalibrationDegreeDistributions(t *testing.T) {
	u := testUniverse(t)
	g := u.Graph

	fin, err := stats.FitDegreeDistribution(graph.InDegrees(g, 1))
	if err != nil {
		t.Fatal(err)
	}
	if fin.Alpha < 0.9 || fin.Alpha > 1.6 {
		t.Errorf("in-degree alpha = %.2f, want ~1.3 (band 0.9-1.6)", fin.Alpha)
	}
	if fin.R2 < 0.85 {
		t.Errorf("in-degree fit R2 = %.3f, want >= 0.85", fin.R2)
	}
	fout, err := stats.FitDegreeDistribution(graph.OutDegrees(g, 1))
	if err != nil {
		t.Fatal(err)
	}
	if fout.Alpha < 1.0 || fout.Alpha > 1.7 {
		t.Errorf("out-degree alpha = %.2f, want ~1.2 (band 1.0-1.7)", fout.Alpha)
	}
	if fout.R2 < 0.9 {
		t.Errorf("out-degree fit R2 = %.3f, want >= 0.9", fout.R2)
	}

	// §3.3.1: the out-degree curve drops sharply at the 5,000 cap; only
	// celebrities may pass it.
	for uID := 0; uID < g.NumNodes(); uID++ {
		if g.OutDegree(graph.NodeID(uID)) > u.Config.OutDegreeCap && !u.Celebrity[uID] {
			t.Fatalf("ordinary node %d exceeds the out-degree cap", uID)
		}
	}
}

func TestCalibrationProfiles(t *testing.T) {
	u := testUniverse(t)
	n := len(u.Profiles)

	var tel, located, genderShared, male, female int
	var telMale, telOver6, allOver6 int
	byCountry := map[string]int{}
	for i := range u.Profiles {
		p := &u.Profiles[i]
		if !p.Public.Has(profile.AttrName) {
			t.Fatal("name must always be public")
		}
		if p.Public.FieldCount() > 6 {
			allOver6++
		}
		if p.IsTelUser() {
			tel++
			if p.Gender == profile.GenderMale {
				telMale++
			}
			if p.Public.FieldCount() > 6 {
				telOver6++
			}
		}
		if p.HasLocation() {
			located++
			byCountry[p.CountryCode]++
		}
		if p.Public.Has(profile.AttrGender) {
			genderShared++
			switch p.Gender {
			case profile.GenderMale:
				male++
			case profile.GenderFemale:
				female++
			}
		}
	}

	if f := float64(tel) / float64(n); f < 0.0013 || f > 0.006 {
		t.Errorf("tel-user fraction = %.4f, want ~0.0026", f)
	}
	if f := float64(located) / float64(n); math.Abs(f-0.2675) > 0.02 {
		t.Errorf("located fraction = %.4f, want ~0.2675", f)
	}
	if f := float64(genderShared) / float64(n); math.Abs(f-0.9767) > 0.02 {
		t.Errorf("gender-shared fraction = %.4f, want ~0.9767", f)
	}
	if f := float64(male) / float64(male+female); math.Abs(f-0.6825) > 0.03 {
		t.Errorf("male share among disclosed = %.3f, want ~0.68", f)
	}
	// Table 3: tel-users skew male far beyond the base rate.
	if f := float64(telMale) / float64(tel); f < 0.78 {
		t.Errorf("tel-user male share = %.3f, want >= 0.78 (paper 0.86)", f)
	}
	// Figure 2: tel-users share far more fields.
	telFrac := float64(telOver6) / float64(tel)
	allFrac := float64(allOver6) / float64(n)
	if telFrac < 3*allFrac {
		t.Errorf("tel-user >6-fields fraction %.3f not >> all-user %.3f", telFrac, allFrac)
	}
	if allFrac < 0.03 || allFrac > 0.2 {
		t.Errorf("all-user >6-fields fraction = %.3f, want ~0.10", allFrac)
	}

	// Figure 6: US ~31% and IN ~17% of located users; top-10 ordering
	// roughly holds.
	us := float64(byCountry["US"]) / float64(located)
	in := float64(byCountry["IN"]) / float64(located)
	if math.Abs(us-0.3138) > 0.03 {
		t.Errorf("US share = %.3f, want ~0.3138", us)
	}
	if math.Abs(in-0.1671) > 0.03 {
		t.Errorf("IN share = %.3f, want ~0.1671", in)
	}
	if byCountry["US"] < byCountry["IN"] || byCountry["IN"] < byCountry["BR"] {
		t.Error("Figure 6 country ordering violated for US/IN/BR")
	}
}

func TestTopUsersAreCelebrities(t *testing.T) {
	u := testUniverse(t)
	top := graph.TopByInDegree(u.Graph, 20, 1)
	celebs := 0
	for _, id := range top {
		if u.Celebrity[id] {
			celebs++
		}
	}
	if celebs < 14 {
		t.Errorf("top-20 contains only %d celebrities, want >= 14", celebs)
	}
	counts := u.TopOccupationCounts(20)
	if counts[profile.OccupationOther] > 5 {
		t.Errorf("top-20 has %d uncoded occupations, want <= 5", counts[profile.OccupationOther])
	}
	// Table 1: IT figures are strongly over-represented among top users.
	if counts[profile.IT] < 2 {
		t.Errorf("top-20 IT count = %d, want >= 2 (paper: 7)", counts[profile.IT])
	}
}

func TestPaShareMonotonic(t *testing.T) {
	cfg := DefaultConfig(10)
	prev := -1.0
	for d := 1; d <= 10_000; d *= 2 {
		s := paShareFor(cfg, d)
		if s < cfg.PAShareMin-1e-9 || s > cfg.PAShareMax+1e-9 {
			t.Fatalf("paShare(%d) = %v outside bounds", d, s)
		}
		if s < prev {
			t.Fatalf("paShare not monotonic at d=%d", d)
		}
		prev = s
	}
}

func TestHomeCountryAssignedToEveryone(t *testing.T) {
	u := testUniverse(t)
	for i, c := range u.HomeCountry {
		if c == "" {
			t.Fatalf("user %d has no home country", i)
		}
	}
	// Location disclosure matches the public flag.
	for i := range u.Profiles {
		p := &u.Profiles[i]
		if p.Public.Has(profile.AttrPlacesLived) && p.CountryCode != u.HomeCountry[i] {
			t.Fatalf("user %d disclosed country %q != home %q", i, p.CountryCode, u.HomeCountry[i])
		}
		if !p.Public.Has(profile.AttrPlacesLived) && p.CountryCode != "" {
			t.Fatalf("user %d leaks country despite private places-lived", i)
		}
	}
}

func TestMixtureWeightsSumToOne(t *testing.T) {
	var sum float64
	for _, c := range countryMixture {
		if c.weight <= 0 {
			t.Errorf("country %s has non-positive weight", c.code)
		}
		sum += c.weight
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("country mixture sums to %v, want 1", sum)
	}
}

func TestGenerateBaselines(t *testing.T) {
	const n = 20_000
	gplus := testUniverse(t).Graph

	tw, err := GenerateBaseline(TwitterLike, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := GenerateBaseline(FacebookLike, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := GenerateBaseline(OrkutLike, n, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Table 4 orderings.
	twRec := graph.GlobalReciprocity(tw, 1)
	if twRec < 0.12 || twRec > 0.33 {
		t.Errorf("Twitter-like reciprocity = %.3f, want ~0.22", twRec)
	}
	if gRec := graph.GlobalReciprocity(gplus, 1); gRec <= twRec {
		t.Errorf("Google+ reciprocity %.3f must exceed Twitter-like %.3f", gRec, twRec)
	}
	if fbRec := graph.GlobalReciprocity(fb, 1); fbRec != 1 {
		t.Errorf("Facebook-like reciprocity = %.3f, want 1 (all links mutual)", fbRec)
	}
	if okRec := graph.GlobalReciprocity(ok, 1); okRec != 1 {
		t.Errorf("Orkut-like reciprocity = %.3f, want 1", okRec)
	}
	if fb.AvgDegree() <= gplus.AvgDegree() {
		t.Errorf("Facebook-like degree %.1f must exceed Google+ %.1f", fb.AvgDegree(), gplus.AvgDegree())
	}
	if tw.AvgDegree() <= gplus.AvgDegree() {
		t.Errorf("Twitter-like degree %.1f must exceed Google+ %.1f", tw.AvgDegree(), gplus.AvgDegree())
	}

	if _, err := GenerateBaseline(Baseline(99), n, 1); err == nil {
		t.Error("unknown baseline accepted")
	}
	if _, err := GenerateBaseline(TwitterLike, 0, 1); err == nil {
		t.Error("zero nodes accepted")
	}
}

func TestBaselineString(t *testing.T) {
	names := map[Baseline]string{
		TwitterLike: "Twitter-like", FacebookLike: "Facebook-like",
		OrkutLike: "Orkut-like", Baseline(99): "unknown",
	}
	for b, want := range names {
		if b.String() != want {
			t.Errorf("%d.String() = %q, want %q", b, b.String(), want)
		}
	}
}
