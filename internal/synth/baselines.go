package synth

import (
	"fmt"
	"math/rand/v2"

	"gplus/internal/graph"
	"gplus/internal/stats"
)

// Baseline identifies one of the comparison networks of Table 4. The
// paper borrows their statistics from prior work; this package instead
// regenerates structurally comparable graphs and runs them through the
// same measurement pipeline.
type Baseline int

// The comparison networks of Table 4.
const (
	// TwitterLike: directed follow graph, low reciprocity (~22%), strong
	// media-outlet hubs, higher average degree than Google+.
	TwitterLike Baseline = iota
	// FacebookLike: fully reciprocal friendship graph with high average
	// degree and strong triadic closure.
	FacebookLike
	// OrkutLike: fully reciprocal friendship graph at moderate degree.
	OrkutLike
)

// String names the comparison network.
func (b Baseline) String() string {
	switch b {
	case TwitterLike:
		return "Twitter-like"
	case FacebookLike:
		return "Facebook-like"
	case OrkutLike:
		return "Orkut-like"
	}
	return "unknown"
}

// baselineParams captures the structural knobs of a baseline generator.
type baselineParams struct {
	avgDegree     float64
	degreeAlpha   float64
	weightAlpha   float64
	reciprocal    bool    // all edges mutual (Facebook, Orkut)
	reciprocation float64 // per-edge add-back probability otherwise
	triadicShare  float64
	paShare       float64
}

func paramsFor(b Baseline) (baselineParams, error) {
	switch b {
	case TwitterLike:
		return baselineParams{
			avgDegree:     28,
			degreeAlpha:   1.35,
			weightAlpha:   1.1,
			reciprocation: 0.08, // ~22% of edges end up in mutual pairs
			triadicShare:  0.10,
			paShare:       0.70,
		}, nil
	case FacebookLike:
		return baselineParams{
			avgDegree:    60, // scaled down from 190 to stay laptop-sized
			degreeAlpha:  1.5,
			weightAlpha:  2.0,
			reciprocal:   true,
			triadicShare: 0.45,
			paShare:      0.20,
		}, nil
	case OrkutLike:
		return baselineParams{
			avgDegree:    30,
			degreeAlpha:  1.5,
			weightAlpha:  1.8,
			reciprocal:   true,
			triadicShare: 0.40,
			paShare:      0.25,
		}, nil
	}
	return baselineParams{}, fmt.Errorf("synth: unknown baseline %d", b)
}

// GenerateBaseline builds a comparison graph with the given node count.
// Generation is deterministic in (kind, nodes, seed).
func GenerateBaseline(kind Baseline, nodes int, seed uint64) (*graph.Graph, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("synth: nodes = %d, must be positive", nodes)
	}
	p, err := paramsFor(kind)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(seed, seed^uint64(kind)<<32^0xb5297a4d))

	weights := make([]float64, nodes)
	for i := range weights {
		weights[i] = stats.BoundedPareto(rng, p.weightAlpha, 1, 1e6)
	}
	global := stats.NewWeightedChooser(weights)

	// Draw organic degrees so the realized mean lands near avgDegree:
	// solve for xmin on the bounded Pareto by simple scaling.
	// The 1.3 factor compensates for duplicate picks collapsing in the
	// deduplicating builder and for integer truncation of the draws.
	xmin := 1.3 * p.avgDegree * (p.degreeAlpha - 1) / p.degreeAlpha
	if p.reciprocal {
		xmin /= 2 // both directions are added for every stub
	}
	if xmin < 1 {
		xmin = 1
	}
	// Draw all degrees first: the stub loop appends reciprocal edges to
	// targets, so target slices must already exist when it runs.
	deg := make([]int, nodes)
	out := make([][]graph.NodeID, nodes)
	for i := range out {
		deg[i] = int(stats.BoundedPareto(rng, p.degreeAlpha, xmin, 2e5))
		out[i] = make([]graph.NodeID, 0, deg[i])
	}
	for i := range out {
		for s := 0; s < deg[i]; s++ {
			var dst graph.NodeID
			r := rng.Float64()
			switch {
			case r < p.triadicShare && len(out[i]) > 0:
				w := out[i][rng.IntN(len(out[i]))]
				if len(out[w]) == 0 {
					dst = graph.NodeID(global.Choose(rng))
				} else {
					dst = out[w][rng.IntN(len(out[w]))]
				}
			case r < p.triadicShare+p.paShare:
				dst = graph.NodeID(global.Choose(rng))
			default:
				dst = graph.NodeID(rng.IntN(nodes))
			}
			if dst == graph.NodeID(i) {
				continue
			}
			out[i] = append(out[i], dst)
			if p.reciprocal || rng.Float64() < p.reciprocation {
				out[dst] = append(out[dst], graph.NodeID(i))
			}
		}
	}

	var edges int
	for i := range out {
		edges += len(out[i])
	}
	b := graph.NewBuilder(nodes, edges)
	for i, adj := range out {
		for _, v := range adj {
			b.AddEdge(graph.NodeID(i), v)
		}
	}
	return b.Build(), nil
}
