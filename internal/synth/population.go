package synth

import (
	"gplus/internal/geo"
	"gplus/internal/profile"
)

// OtherCountry is the pseudo-code for located users whose country is
// outside the 20-country reference table (Table 3's "Other" row).
const OtherCountry = "XX"

// countryWeight is one slot of the located-user country mixture.
type countryWeight struct {
	code   string
	weight float64
}

// countryMixture reproduces the located-user country distribution: the
// Figure-6 shares for the top ten, calibrated secondary weights for the
// rest of the reference table (shaped so Figure 7(a)'s GPR ranking comes
// out: India on top, Japan/Russia/China depressed), and a large "Other"
// remainder matching Table 3's 40.5%.
var countryMixture = []countryWeight{
	{"US", 0.3138}, {"IN", 0.1671}, {"BR", 0.0576}, {"GB", 0.0335},
	{"CA", 0.0230}, {"DE", 0.0205}, {"ID", 0.0190}, {"MX", 0.0170},
	{"IT", 0.0160}, {"ES", 0.0150},
	// Secondary table countries.
	{"RU", 0.0080}, {"FR", 0.0110}, {"JP", 0.0060}, {"CN", 0.0070},
	{"TH", 0.0110}, {"TW", 0.0100}, {"VN", 0.0120}, {"AR", 0.0095},
	{"AU", 0.0105}, {"IR", 0.0060},
	// Everything else in the world.
	{OtherCountry, 0.2265},
}

// otherWorldCities scatters OtherCountry users across plausible
// locations so path-mile analyses remain meaningful for them.
var otherWorldCities = []geo.Point{
	{Lat: 37.57, Lon: 126.98},  // Seoul
	{Lat: 6.52, Lon: 3.38},     // Lagos
	{Lat: 41.01, Lon: 28.98},   // Istanbul
	{Lat: 52.23, Lon: 21.01},   // Warsaw
	{Lat: 30.04, Lon: 31.24},   // Cairo
	{Lat: 24.86, Lon: 67.01},   // Karachi
	{Lat: 14.60, Lon: 120.98},  // Manila
	{Lat: 50.45, Lon: 30.52},   // Kyiv
	{Lat: 44.43, Lon: 26.10},   // Bucharest
	{Lat: -33.45, Lon: -70.67}, // Santiago
}

// attrBase gives each optional attribute's baseline public-disclosure
// probability, straight from Table 2 (name is always public; places
// lived is governed separately by Config.LocatedFraction; the contact
// fields by the tel-user model).
var attrBase = map[profile.Attr]float64{
	profile.AttrGender:           0.9767,
	profile.AttrEducation:        0.2711,
	profile.AttrEmployment:       0.2147,
	profile.AttrPhrase:           0.1479,
	profile.AttrOtherProfiles:    0.1348,
	profile.AttrOccupation:       0.1327,
	profile.AttrContributorTo:    0.1315,
	profile.AttrIntroduction:     0.0780,
	profile.AttrOtherNames:       0.0439,
	profile.AttrRelationship:     0.0431,
	profile.AttrBraggingRights:   0.0390,
	profile.AttrRecommendedLinks: 0.0363,
	profile.AttrLookingFor:       0.0274,
}

// countryOpenness shifts the per-user disclosure propensity (in logit
// units) to reproduce Figure 8's ordering: Indonesia and Mexico most
// open, Germany most conservative.
var countryOpenness = map[string]float64{
	"ID": 0.45, "MX": 0.35, "US": 0.15, "BR": 0.10, "GB": 0.05,
	"ES": 0.00, "CA": -0.05, "IT": -0.10, "IN": -0.15, "DE": -0.55,
}

// countryTelShift adjusts the tel-user propensity per country (logit
// units) so India's share of tel-users roughly doubles versus its share
// of all users while the US share collapses (Table 3's Location block).
var countryTelShift = map[string]float64{
	"IN": 1.45, "US": -1.45, "GB": -0.55, "CA": -0.55, "BR": -0.25,
}

// genderShares is Table 3's all-users gender split among disclosers.
var genderShares = []struct {
	g profile.Gender
	w float64
}{
	{profile.GenderMale, 0.6765},
	{profile.GenderFemale, 0.3146},
	{profile.GenderOther, 0.0089},
}

// relationshipShares is Table 3's all-users relationship split among
// disclosers.
var relationshipShares = []struct {
	r profile.Relationship
	w float64
}{
	{profile.RelSingle, 0.4282},
	{profile.RelMarried, 0.2659},
	{profile.RelInRelationship, 0.1980},
	{profile.RelComplicated, 0.0316},
	{profile.RelEngaged, 0.0439},
	{profile.RelOpenRelationship, 0.0126},
	{profile.RelWidowed, 0.0050},
	{profile.RelDomesticPartnership, 0.0108},
	{profile.RelCivilUnion, 0.0039},
}

// genderTelShift and relationshipTelShift bias tel-user propensity so
// the tel-user column of Table 3 comes out: heavily male, heavily
// single.
var genderTelShift = map[profile.Gender]float64{
	profile.GenderMale:   0.55,
	profile.GenderFemale: -1.25,
	profile.GenderOther:  0.60,
}

var relationshipTelShift = map[profile.Relationship]float64{
	profile.RelSingle:              0.45,
	profile.RelMarried:             -0.20,
	profile.RelInRelationship:      -0.75,
	profile.RelComplicated:         0.30,
	profile.RelEngaged:             -0.40,
	profile.RelOpenRelationship:    0.85,
	profile.RelWidowed:             0.20,
	profile.RelDomesticPartnership: -0.35,
	profile.RelCivilUnion:          0.10,
}

// crossCountryAffinity encodes the transnational-friendship patterns
// behind Figure 10: Anglosphere countries (GB, CA) form a large share of
// their social ties with the US, European countries a smaller one, while
// the US, Brazil, India and Indonesia stay inward looking. LocalAbroad
// is the probability a genuine social pick crosses to Target; PADomestic
// overrides the default domestic preferential share.
var crossCountryAffinity = map[string]struct {
	LocalAbroad float64
	Target      string
	PADomestic  float64
}{
	"GB": {LocalAbroad: 0.45, Target: "US", PADomestic: 0.10},
	"CA": {LocalAbroad: 0.45, Target: "US", PADomestic: 0.10},
	"DE": {LocalAbroad: 0.30, Target: "US", PADomestic: 0.20},
	"ES": {LocalAbroad: 0.18, Target: "US", PADomestic: 0.30},
	"IT": {LocalAbroad: 0.15, Target: "US", PADomestic: 0.30},
	"MX": {LocalAbroad: 0.20, Target: "US", PADomestic: 0.30},
}

// celebrityOccupations gives per-country occupation priors for top
// users, encoding Table 5's rows (US hubs skew IT/music, Brazil
// comedians and bloggers, Italy journalists, Spain the only country
// with politicians, ...).
var celebrityOccupations = map[string][]struct {
	o profile.Occupation
	w float64
}{
	"US": {{profile.Musician, 0.24}, {profile.IT, 0.38}, {profile.Comedian, 0.08},
		{profile.Businessman, 0.08}, {profile.Model, 0.10}, {profile.Actor, 0.12}},
	"IN": {{profile.Musician, 0.27}, {profile.IT, 0.35}, {profile.Model, 0.18},
		{profile.Socialite, 0.10}, {profile.Businessman, 0.10}},
	"BR": {{profile.Comedian, 0.30}, {profile.Blogger, 0.20}, {profile.TVHost, 0.12},
		{profile.Journalist, 0.12}, {profile.Writer, 0.08}, {profile.Artist, 0.08},
		{profile.Musician, 0.10}},
	"GB": {{profile.IT, 0.38}, {profile.Musician, 0.30}, {profile.Businessman, 0.12},
		{profile.Model, 0.10}, {profile.Socialite, 0.10}},
	"CA": {{profile.IT, 0.38}, {profile.Musician, 0.18}, {profile.Comedian, 0.18},
		{profile.Actor, 0.16}, {profile.Businessman, 0.10}},
	"DE": {{profile.Blogger, 0.30}, {profile.IT, 0.30}, {profile.Journalist, 0.20},
		{profile.Economist, 0.10}, {profile.Musician, 0.10}},
	"ID": {{profile.Musician, 0.20}, {profile.IT, 0.20}, {profile.Model, 0.20},
		{profile.Socialite, 0.10}, {profile.Economist, 0.10}, {profile.Photographer, 0.10},
		{profile.Journalist, 0.10}},
	"MX": {{profile.Musician, 0.50}, {profile.Blogger, 0.20}, {profile.IT, 0.10},
		{profile.Actor, 0.10}, {profile.Journalist, 0.10}},
	"IT": {{profile.Journalist, 0.40}, {profile.IT, 0.40}, {profile.Musician, 0.20}},
	"ES": {{profile.Journalist, 0.10}, {profile.Politician, 0.30}, {profile.IT, 0.30},
		{profile.Musician, 0.30}},
}

// defaultCelebrityOccupations covers countries without a Table 5 row.
var defaultCelebrityOccupations = []struct {
	o profile.Occupation
	w float64
}{
	{profile.Musician, 0.25}, {profile.IT, 0.30}, {profile.Actor, 0.12},
	{profile.Blogger, 0.10}, {profile.Journalist, 0.09}, {profile.Model, 0.09},
	{profile.Writer, 0.05},
}
