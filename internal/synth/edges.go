package synth

import (
	"math"
	"math/rand/v2"
	"sort"

	"gplus/internal/graph"
	"gplus/internal/profile"
	"gplus/internal/stats"
)

// generateEdges builds the directed circle graph over the generated
// population and freezes it into u.Graph, then back-fills the declared
// degree fields of every profile.
//
// The model layers four empirically-motivated mechanisms:
//
//   - Two user populations: casual users add only a handful of contacts
//     (the flat head of the out-degree CCDF and the source of small SCCs);
//     engaged users draw from a bounded power law with tail exponent
//     OutDegreeAlpha, capped at the service's 5,000 limit unless they are
//     celebrities (§3.3.1).
//   - Communities: each country's users are partitioned into tight
//     communities; "local" stubs mostly stay inside them, which yields
//     realistic clustering (Figure 4b) and geographic homophily
//     (Figures 9/10).
//   - Triadic closure: a share of stubs pick a friend-of-a-friend.
//   - Preferential attachment: remaining stubs follow heavy-tailed
//     attractiveness weights, whose tail is continued past the ordinary
//     cap by celebrity weights — producing the in-degree power law and
//     hub table (Figure 3, Table 1).
//
// Reciprocation depends on how the edge was formed (social picks are
// added back often, one-way follows of popular users rarely), which keeps
// per-node RR high for ordinary users (Figure 4a) while global edge
// reciprocity stays near 32% (Table 4).
func (u *Universe) generateEdges(rng *rand.Rand) {
	cfg := u.Config
	n := cfg.Nodes

	// Attractiveness weights: ordinary users draw a bounded power law;
	// celebrity weights continue the tail beyond the ordinary cap.
	weights := make([]float64, n)
	for i := range weights {
		if u.Celebrity[i] {
			weights[i] = stats.BoundedPareto(rng, 1.2, cfg.OrdinaryWeightCap, cfg.CelebrityWeightMax)
		} else {
			weights[i] = stats.BoundedPareto(rng, cfg.InWeightAlpha, 1, cfg.OrdinaryWeightCap)
		}
	}
	global := stats.NewWeightedChooser(weights)

	// Domestic preferential choosers: a share of the popularity-driven
	// follows target the user's own country's stars (people follow
	// domestic celebrities — the reason Table 5's per-country top lists
	// differ), which also keeps friend links geographically close
	// (Figure 9) and self-loop weights high (Figure 10).
	domestic := make(map[string]*stats.WeightedChooser, len(countryMixture))
	domesticMembers := make(map[string][]graph.NodeID, len(countryMixture))

	// Country member lists, then a community partition within each
	// country: contiguous runs of shuffled members with random sizes.
	members := make(map[string][]graph.NodeID, len(countryMixture))
	for i := 0; i < n; i++ {
		members[u.HomeCountry[i]] = append(members[u.HomeCountry[i]], graph.NodeID(i))
	}
	for _, cw := range countryMixture {
		list := members[cw.code]
		if len(list) == 0 {
			continue
		}
		w := make([]float64, len(list))
		for i, node := range list {
			w[i] = weights[node]
		}
		domestic[cw.code] = stats.NewWeightedChooser(w)
		domesticMembers[cw.code] = list
	}
	community := make([][]graph.NodeID, 0, n/cfg.CommunityMin+1)
	communityOf := make([]int32, n)
	// Iterate countries in mixture order, not map order, so generation
	// stays deterministic.
	for _, cw := range countryMixture {
		list := members[cw.code]
		rng.Shuffle(len(list), func(a, b int) { list[a], list[b] = list[b], list[a] })
		for start := 0; start < len(list); {
			size := cfg.CommunityMin
			if cfg.CommunityMax > cfg.CommunityMin {
				size += rng.IntN(cfg.CommunityMax - cfg.CommunityMin + 1)
			}
			end := start + size
			if end > len(list) {
				end = len(list)
			}
			id := int32(len(community))
			group := list[start:end]
			community = append(community, group)
			for _, node := range group {
				communityOf[node] = id
			}
			start = end
		}
	}

	// Organic out-degrees: casual head plus engaged power-law body.
	outDeg := make([]int, n)
	casual := make([]bool, n)
	for i := range outDeg {
		if !u.Celebrity[i] && rng.Float64() < cfg.CasualFraction {
			casual[i] = true
			outDeg[i] = int(stats.BoundedPareto(rng, 1.2, 1, float64(cfg.CasualDegreeMax)))
			continue
		}
		cap := float64(cfg.OutDegreeCap)
		if u.Celebrity[i] {
			cap *= 4 // special users may outpass the threshold
		}
		outDeg[i] = int(stats.BoundedPareto(rng, cfg.OutDegreeAlpha, cfg.OutDegreeMin, cap))
	}

	out := make([][]graph.NodeID, n)
	for i := range out {
		out[i] = make([]graph.NodeID, 0, outDeg[i]+2)
	}
	// Duplicate suppression: small out-lists use a linear scan; nodes
	// that grow past a threshold switch to a set. Without this, dense
	// communities generate so many duplicate picks that the deduplicating
	// graph builder would silently shrink realized degrees.
	const setThreshold = 24
	sets := make(map[graph.NodeID]map[graph.NodeID]struct{})
	hasEdge := func(src, dst graph.NodeID) bool {
		if s, ok := sets[src]; ok {
			_, dup := s[dst]
			return dup
		}
		for _, v := range out[src] {
			if v == dst {
				return true
			}
		}
		return false
	}
	addEdge := func(src, dst graph.NodeID) bool {
		if src == dst || hasEdge(src, dst) {
			return false
		}
		out[src] = append(out[src], dst)
		if s, ok := sets[src]; ok {
			s[dst] = struct{}{}
		} else if len(out[src]) == setThreshold {
			s = make(map[graph.NodeID]struct{}, 2*setThreshold)
			for _, v := range out[src] {
				s[v] = struct{}{}
			}
			sets[src] = s
		}
		return true
	}

	// social marks edges formed through a genuine social pick (local or
	// triadic): friends respond to friends even when otherwise inactive,
	// so the casual-response penalty only applies to strangers found via
	// preferential attachment. Members of the same community add each
	// other back at a high flat rate — the offline-friendship signature
	// that keeps ordinary users' RR high (Figure 4a).
	const communityResponse = 0.88
	reciprocate := func(src, dst graph.NodeID, typeProb float64, social bool) {
		p := typeProb
		if u.Celebrity[dst] {
			p = cfg.ReciprocationCelebrity
		} else if communityOf[src] == communityOf[dst] {
			if p < communityResponse {
				p = communityResponse
			}
		} else if casual[dst] && !social {
			p *= cfg.CasualResponse
		}
		if rng.Float64() >= p {
			return
		}
		if !u.Celebrity[dst] && len(out[dst]) >= cfg.OutDegreeCap {
			return
		}
		addEdge(dst, src)
	}

	for i := 0; i < n; i++ {
		src := graph.NodeID(i)
		d := outDeg[i]
		paShare := paShareFor(cfg, d)
		country := members[u.HomeCountry[i]]
		comm := community[communityOf[i]]
		homeChooser := domestic[u.HomeCountry[i]]
		homeMembers := domesticMembers[u.HomeCountry[i]]
		paDomestic := cfg.PADomestic
		affinity, hasAffinity := crossCountryAffinity[u.HomeCountry[i]]
		var abroadMembers []graph.NodeID
		if hasAffinity {
			paDomestic = affinity.PADomestic
			abroadMembers = members[affinity.Target]
		}
		pickPA := func() graph.NodeID {
			if homeChooser != nil && rng.Float64() < paDomestic {
				return homeMembers[homeChooser.Choose(rng)]
			}
			return graph.NodeID(global.Choose(rng))
		}
		for s := 0; s < d; s++ {
			// A duplicate or self pick retries a few times, falling back
			// to a global pick so heavy users are not starved when their
			// community is exhausted.
			for attempt := 0; attempt < 4; attempt++ {
				var dst graph.NodeID
				var typeProb float64
				social := false
				r := rng.Float64()
				switch {
				case attempt == 3:
					dst = pickPA()
					typeProb = cfg.ReciprocationGlobal
				case r >= paShare && rng.Float64() < cfg.TriadicShare && len(out[i]) > 0:
					// Triadic: a friend of a friend.
					w := out[i][rng.IntN(len(out[i]))]
					if len(out[w]) == 0 {
						dst = pickPA()
						typeProb = cfg.ReciprocationGlobal
					} else {
						dst = out[w][rng.IntN(len(out[w]))]
						typeProb = cfg.ReciprocationTriadic
						social = true
					}
				case r >= paShare && len(country) > 1:
					// Local: usually within the community, sometimes
					// anywhere in the country — or, for countries with a
					// strong cultural tie abroad (GB/CA toward the US), a
					// genuine transnational friendship.
					switch {
					case hasAffinity && len(abroadMembers) > 0 && rng.Float64() < affinity.LocalAbroad:
						dst = abroadMembers[rng.IntN(len(abroadMembers))]
					case len(comm) > 1 && rng.Float64() < cfg.CommunityAffinity:
						dst = comm[rng.IntN(len(comm))]
					default:
						dst = country[rng.IntN(len(country))]
					}
					typeProb = cfg.ReciprocationLocal
					social = true
				default:
					// Global: preferential attachment on attractiveness,
					// partially biased toward domestic stars.
					dst = pickPA()
					typeProb = cfg.ReciprocationGlobal
				}
				if !addEdge(src, dst) {
					continue
				}
				reciprocate(src, dst, typeProb, social)
				break
			}
		}
	}

	var edges int
	for i := range out {
		edges += len(out[i])
	}
	b := graph.NewBuilder(n, edges)
	for i, adj := range out {
		for _, v := range adj {
			b.AddEdge(graph.NodeID(i), v)
		}
	}
	u.Graph = b.Build()

	for i := range u.Profiles {
		u.Profiles[i].DeclaredInDegree = u.Graph.InDegree(graph.NodeID(i))
		u.Profiles[i].DeclaredOutDegree = u.Graph.OutDegree(graph.NodeID(i))
	}

	// Anyone who ends up among the most-followed users — globally or
	// within their country — is a public figure with a coded occupation,
	// whether or not they were seeded as a celebrity: neither Table 1 nor
	// Table 5 has anonymous entries.
	choosers := buildOccupationChoosers()
	codeOccupation := func(node graph.NodeID) {
		p := &u.Profiles[node]
		if p.Occupation == profile.OccupationOther {
			p.Public = p.Public.With(profile.AttrOccupation)
			p.Occupation = sampleOccupation(u.HomeCountry[node], true, choosers, rng)
		}
	}
	for _, node := range graph.TopByInDegree(u.Graph, 100, 1) {
		codeOccupation(node)
	}
	// Top located users per country (Table 5's ranking population).
	type ranked struct {
		node graph.NodeID
		deg  int
	}
	topLocated := make(map[string][]ranked)
	for i := range u.Profiles {
		if !u.Profiles[i].HasLocation() {
			continue
		}
		c := u.HomeCountry[i]
		topLocated[c] = append(topLocated[c], ranked{graph.NodeID(i), u.Graph.InDegree(graph.NodeID(i))})
	}
	for _, cw := range countryMixture {
		list := topLocated[cw.code]
		sort.Slice(list, func(a, b int) bool {
			if list[a].deg != list[b].deg {
				return list[a].deg > list[b].deg
			}
			return list[a].node < list[b].node
		})
		for i := 0; i < len(list) && i < 20; i++ {
			codeOccupation(list[i].node)
		}
	}
}

// paShareFor returns the preferential-attachment share of the stub mix
// for a user with drawn out-degree d: PAShareMin for light users, rising
// steeply toward PAShareMax once d passes SocialDegree. The saturation is
// deliberately fast — the stub mass of a power-law out-degree sequence is
// dominated by heavy adders, and it is their one-way follows that pull
// the global edge reciprocity down to the paper's 32% while light users
// keep high per-node RR.
func paShareFor(cfg Config, d int) float64 {
	k := float64(cfg.SocialDegree)
	dd := float64(d)
	if dd < k {
		dd = k
	}
	frac := 1 - math.Pow(k/dd, 1.5)
	return cfg.PAShareMin + (cfg.PAShareMax-cfg.PAShareMin)*frac
}

// TopOccupationCounts tallies the occupations of the k most-followed
// users, the summary behind Table 1's "7 out of 20 are IT" observation.
func (u *Universe) TopOccupationCounts(k int) map[profile.Occupation]int {
	top := graph.TopByInDegree(u.Graph, k, 1)
	counts := make(map[profile.Occupation]int)
	for _, id := range top {
		counts[u.Profiles[id].Occupation]++
	}
	return counts
}
