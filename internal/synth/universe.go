package synth

import (
	"fmt"
	"math"
	"math/rand/v2"

	"gplus/internal/geo"
	"gplus/internal/graph"
	"gplus/internal/profile"
	"gplus/internal/stats"
)

// Universe is a fully generated synthetic Google+ population: the ground
// truth the service simulator serves and the crawler rediscovers.
type Universe struct {
	Config    Config
	Graph     *graph.Graph
	Profiles  []profile.Profile
	IDs       []string
	Celebrity []bool
	// HomeCountry is every user's ground-truth country, including users
	// who never disclose it. The edge generator uses it for geographic
	// homophily; the service only ever exposes the public profile fields.
	HomeCountry []string
}

// NumUsers returns the population size.
func (u *Universe) NumUsers() int { return len(u.Profiles) }

// Generate builds a universe from the configuration. Generation is
// deterministic in the configuration (including Seed).
func Generate(cfg Config) (*Universe, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	u := &Universe{Config: cfg}
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x9e3779b97f4a7c15))
	u.generatePeople(rng)
	u.generateEdges(rng)
	return u, nil
}

// generatePeople fills Profiles, IDs and Celebrity.
func (u *Universe) generatePeople(rng *rand.Rand) {
	n := u.Config.Nodes
	u.Profiles = make([]profile.Profile, n)
	u.IDs = make([]string, n)
	u.Celebrity = make([]bool, n)
	u.HomeCountry = make([]string, n)

	countryChooser := stats.NewWeightedChooser(mixtureWeights())
	occupationChoosers := buildOccupationChoosers()

	// Pre-solve each attribute's effective base rate so that averaging
	// logistic(logit(base') + N(0, sigma)) over the population lands on
	// the Table 2 target exactly.
	adjBase := make(map[profile.Attr]float64, len(attrBase))
	for a, target := range attrBase {
		adjBase[a] = calibrateBase(target, opennessSigma)
	}

	for i := 0; i < n; i++ {
		p := &u.Profiles[i]
		u.IDs[i] = userID(u.Config.Seed, i)
		u.Celebrity[i] = rng.Float64() < u.Config.CelebrityFraction

		code := countryMixture[countryChooser.Choose(rng)].code
		u.HomeCountry[i] = code
		placeName, loc := samplePlace(code, rng)

		// Per-user disclosure propensity in logit units, shifted by the
		// country's openness culture (Figure 8). The wide sigma creates
		// the heavy tail of very open users behind Figure 2.
		openness := opennessSigma*rng.NormFloat64() + countryOpenness[code]

		if u.Celebrity[i] {
			p.Name = fmt.Sprintf("star-%07d", i)
		} else {
			p.Name = fmt.Sprintf("user-%07d", i)
		}
		p.Public = profile.AttrSet(0).With(profile.AttrName) // mandatory

		// Restricted fields: values exist for everyone; disclosure is a
		// separate decision.
		gender := sampleGender(rng)
		rel := sampleRelationship(rng)

		if bernoulliLogit(rng, adjBase[profile.AttrGender], openness) {
			p.Public = p.Public.With(profile.AttrGender)
			p.Gender = gender
		}
		if bernoulliLogit(rng, adjBase[profile.AttrRelationship], openness) {
			p.Public = p.Public.With(profile.AttrRelationship)
			p.Relationship = rel
		}
		// Public figures overwhelmingly publish where they live; ordinary
		// users disclose at the Table 2 rate. Without this, per-country
		// top-user rankings (Table 5) would miss the very celebrities
		// they are about.
		locProb := u.Config.LocatedFraction
		if u.Celebrity[i] {
			locProb = 0.85
		}
		if rng.Float64() < locProb {
			p.Public = p.Public.With(profile.AttrPlacesLived)
			p.Loc = loc
			p.CountryCode = code
			p.Place = placeName
			// Users may list every place they ever lived; the last entry
			// is the current location (§4 extracts the last).
			for rng.Float64() < 0.3 {
				prev, _ := samplePlace(code, rng)
				p.PlacesLived = append(p.PlacesLived, prev)
				if len(p.PlacesLived) >= 3 {
					break
				}
			}
			p.PlacesLived = append(p.PlacesLived, placeName)
		} else {
			// The location still influences link formation (people know
			// their neighbors whether or not they publish it); only the
			// public fields are cleared.
			p.Loc = loc
		}

		for _, a := range []profile.Attr{
			profile.AttrEducation, profile.AttrEmployment, profile.AttrPhrase,
			profile.AttrOtherProfiles, profile.AttrOccupation,
			profile.AttrContributorTo, profile.AttrIntroduction,
			profile.AttrOtherNames, profile.AttrBraggingRights,
			profile.AttrRecommendedLinks, profile.AttrLookingFor,
		} {
			if bernoulliLogit(rng, adjBase[a], openness) {
				p.Public = p.Public.With(a)
			}
		}

		// Tel-users: risk takers who publish phone-bearing contact info.
		// The propensity rises steeply with the user's general openness
		// (so tel-users share more of everything, Figure 2) and is
		// shifted by gender, relationship status and country (Table 3).
		telShift := 1.8*openness + genderTelShift[gender] +
			relationshipTelShift[rel] + countryTelShift[code]
		if bernoulliLogit(rng, u.Config.TelUserBase, telShift) {
			switch rng.IntN(3) {
			case 0:
				p.Public = p.Public.With(profile.AttrWorkContact)
			case 1:
				p.Public = p.Public.With(profile.AttrHomeContact)
			default:
				p.Public = p.Public.With(profile.AttrWorkContact).With(profile.AttrHomeContact)
			}
		}

		if p.Public.Has(profile.AttrOccupation) || u.Celebrity[i] {
			p.Public = p.Public.With(profile.AttrOccupation)
			p.Occupation = sampleOccupation(code, u.Celebrity[i], occupationChoosers, rng)
		}
	}
}

// opennessSigma is the standard deviation of the per-user disclosure
// propensity (logit units).
const opennessSigma = 1.4

// calibrateBase inverts the population-averaged disclosure probability:
// it returns base' such that E[logistic(logit(base') + N(0, sigma))] =
// target, via bisection over a fixed-grid Gaussian quadrature.
func calibrateBase(target, sigma float64) float64 {
	if target <= 0 || target >= 1 {
		return target
	}
	const gridHalf = 30 // +-5 sigma in 1/6-sigma steps
	realized := func(base float64) float64 {
		logit := math.Log(base / (1 - base))
		var sum, wsum float64
		for i := -gridHalf; i <= gridHalf; i++ {
			x := 5 * sigma * float64(i) / gridHalf
			w := math.Exp(-x * x / (2 * sigma * sigma))
			sum += w / (1 + math.Exp(-(logit + x)))
			wsum += w
		}
		return sum / wsum
	}
	lo, hi := 1e-9, 1-1e-9
	for iter := 0; iter < 80; iter++ {
		mid := (lo + hi) / 2
		if realized(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// mixtureWeights extracts the weight column of countryMixture.
func mixtureWeights() []float64 {
	w := make([]float64, len(countryMixture))
	for i, c := range countryMixture {
		w[i] = c.weight
	}
	return w
}

type occupationChooser struct {
	chooser *stats.WeightedChooser
	values  []profile.Occupation
}

func buildOccupationChoosers() map[string]occupationChooser {
	m := make(map[string]occupationChooser, len(celebrityOccupations)+1)
	for code, entries := range celebrityOccupations {
		w := make([]float64, len(entries))
		v := make([]profile.Occupation, len(entries))
		for i, e := range entries {
			w[i], v[i] = e.w, e.o
		}
		m[code] = occupationChooser{stats.NewWeightedChooser(w), v}
	}
	w := make([]float64, len(defaultCelebrityOccupations))
	v := make([]profile.Occupation, len(defaultCelebrityOccupations))
	for i, e := range defaultCelebrityOccupations {
		w[i], v[i] = e.w, e.o
	}
	m[""] = occupationChooser{stats.NewWeightedChooser(w), v}
	return m
}

func sampleOccupation(code string, celebrity bool, choosers map[string]occupationChooser, rng *rand.Rand) profile.Occupation {
	if !celebrity && rng.Float64() < 0.80 {
		return profile.OccupationOther
	}
	oc, ok := choosers[code]
	if !ok {
		oc = choosers[""]
	}
	return oc.values[oc.chooser.Choose(rng)]
}

func sampleGender(rng *rand.Rand) profile.Gender {
	r := rng.Float64()
	acc := 0.0
	for _, gs := range genderShares {
		acc += gs.w
		if r < acc {
			return gs.g
		}
	}
	return profile.GenderOther
}

func sampleRelationship(rng *rand.Rand) profile.Relationship {
	r := rng.Float64()
	acc := 0.0
	for _, rs := range relationshipShares {
		acc += rs.w
		if r < acc {
			return rs.r
		}
	}
	return profile.RelSingle
}

// samplePlace picks a gazetteer city of the country (or an other-world
// city for OtherCountry) and returns its free-text name plus jittered
// coordinates, so distances within a metro area are nonzero and the
// place string resolves through the §4 geocoding pipeline.
func samplePlace(code string, rng *rand.Rand) (string, geo.Point) {
	var (
		base geo.Point
		name string
	)
	if code == OtherCountry {
		base = otherWorldCities[rng.IntN(len(otherWorldCities))]
		name = "Somewhere Else"
	} else {
		cities := geo.Cities(code)
		if len(cities) == 0 {
			if c, ok := geo.ByCode(code); ok {
				base = c.Centroid
				name = c.Name
			}
		} else {
			city := cities[rng.IntN(len(cities))]
			base = city.Loc
			name = city.Name
		}
	}
	base.Lat += rng.NormFloat64() * 0.5
	base.Lon += rng.NormFloat64() * 0.5
	if base.Lat > 89 {
		base.Lat = 89
	}
	if base.Lat < -89 {
		base.Lat = -89
	}
	return name, base
}

// bernoulliLogit draws true with probability logistic(logit(base) +
// shift): a convenient way to modulate a base rate without leaving [0,1].
func bernoulliLogit(rng *rand.Rand, base, shift float64) bool {
	if base <= 0 {
		return false
	}
	if base >= 1 {
		return true
	}
	logit := math.Log(base/(1-base)) + shift
	p := 1 / (1 + math.Exp(-logit))
	return rng.Float64() < p
}

// userID derives the opaque 21-digit service identifier for node i,
// mimicking Google+'s numeric profile IDs (which could not be enumerated,
// §2.2). The mapping is deterministic per seed and collision-free with
// overwhelming probability at study scales.
func userID(seed uint64, i int) string {
	x := splitmix64(seed + uint64(i)*0x9e3779b97f4a7c15)
	return fmt.Sprintf("1%020d", x)
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
