// Package synth generates the synthetic Google+ universe that stands in
// for the (now shut down) live service, plus baseline social graphs
// calibrated to the comparison networks of Table 4.
//
// The generator is deterministic for a given Config (including Seed):
// every experiment in the study can be re-run bit-for-bit.
package synth

import "fmt"

// Config controls the synthetic universe. The zero value is not valid;
// start from DefaultConfig.
type Config struct {
	// Nodes is the number of users.
	Nodes int
	// Seed drives all randomness; equal configs generate equal universes.
	Seed uint64

	// OutDegreeAlpha is the CCDF tail exponent of the engaged users'
	// out-degree draw (the paper fits 1.2 on the realized curve).
	OutDegreeAlpha float64
	// OutDegreeMin is the lower bound of the engaged out-degree draw;
	// together with OutDegreeAlpha and CasualFraction it sets the mean
	// degree (~16.4 in the paper).
	OutDegreeMin float64
	// OutDegreeCap is the service-imposed friend cap (5,000); only
	// celebrities may exceed it (§3.3.1).
	OutDegreeCap int
	// CasualFraction is the share of users who only ever add a handful
	// of contacts; they produce the flat head of the out-degree CCDF,
	// the small strongly connected components of Figure 4(c), and most
	// of the high-clustering low-degree population of Figure 4(b).
	CasualFraction float64
	// CasualDegreeMax bounds a casual user's organic out-degree.
	CasualDegreeMax int

	// InWeightAlpha is the tail exponent of the ordinary users'
	// preferential-attachment attractiveness weights; it shapes the
	// in-degree CCDF (paper: 1.3). OrdinaryWeightCap bounds it.
	InWeightAlpha     float64
	OrdinaryWeightCap float64

	// CelebrityFraction is the share of users flagged as celebrities:
	// their attractiveness continues the weight tail beyond
	// OrdinaryWeightCap up to CelebrityWeightMax, they are exempt from
	// the out-degree cap, and they almost never reciprocate.
	CelebrityFraction  float64
	CelebrityWeightMax float64

	// CommunityMin and CommunityMax bound the size of the within-country
	// communities that local picks are drawn from; tight communities are
	// what produces realistic clustering coefficients.
	CommunityMin int
	CommunityMax int
	// CommunityAffinity is the probability a local pick stays inside the
	// user's own community rather than anywhere in the country.
	CommunityAffinity float64

	// Reciprocation probabilities by edge type. Edges to genuine social
	// contacts (same-country "local" picks and friend-of-friend "triadic"
	// picks) are added back often; one-way follows of popular users
	// ("global" preferential picks) rarely; celebrities almost never
	// respond regardless of how they were found. The split is what lets
	// ordinary users keep high per-node RR (Figure 4a) while the global
	// edge reciprocity stays near the paper's 32% (Table 4).
	ReciprocationLocal     float64
	ReciprocationTriadic   float64
	ReciprocationGlobal    float64
	ReciprocationCelebrity float64
	// CasualResponse scales a casual user's probability of adding anyone
	// back: inactive accounts rarely respond, which produces the small
	// strongly connected components of Figure 4(c) and keeps global
	// reciprocity below per-node RR.
	CasualResponse float64

	// SocialDegree is the out-degree pivot of the stub-type mix: users
	// adding no more than this many contacts pick mostly local/triadic
	// targets, while aggressive adders shift toward global preferential
	// picks (which mostly go unreciprocated).
	SocialDegree int
	// PAShareMin and PAShareMax bound the preferential-attachment share
	// of a user's out-stubs as out-degree grows from small to huge.
	PAShareMin float64
	PAShareMax float64
	// TriadicShare is the portion of the non-preferential stubs that use
	// triadic closure (friend-of-friend) rather than a same-country pick;
	// it drives the clustering coefficient of Figure 4(b).
	TriadicShare float64
	// PADomestic is the probability a preferential pick targets the
	// user's own country's stars instead of the worldwide pool; it keeps
	// friend links geographically close (Figure 9) and country self-loop
	// weights high (Figure 10), and differentiates the per-country top
	// lists of Table 5.
	PADomestic float64

	// LocatedFraction is the share of users who publicly share "places
	// lived" (paper: 26.75%).
	LocatedFraction float64
	// TelUserBase sets the baseline propensity to share phone-bearing
	// contact info; the realized tel-user share lands near the paper's
	// 0.26% after the per-country and demographic modifiers.
	TelUserBase float64
}

// DefaultConfig returns the calibrated configuration used by the study's
// experiments at a given node count.
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:                  nodes,
		Seed:                   2011,
		OutDegreeAlpha:         1.2,
		OutDegreeMin:           6.5,
		OutDegreeCap:           5000,
		CasualFraction:         0.50,
		CasualDegreeMax:        20,
		InWeightAlpha:          1.3,
		OrdinaryWeightCap:      2000,
		CelebrityFraction:      0.0006,
		CelebrityWeightMax:     1e6,
		CommunityMin:           10,
		CommunityMax:           24,
		CommunityAffinity:      0.88,
		ReciprocationLocal:     0.40,
		ReciprocationTriadic:   0.25,
		ReciprocationGlobal:    0.01,
		ReciprocationCelebrity: 0.01,
		CasualResponse:         0.45,
		SocialDegree:           10,
		PAShareMin:             0.10,
		PAShareMax:             0.98,
		TriadicShare:           0.50,
		PADomestic:             0.50,
		LocatedFraction:        0.2675,
		TelUserBase:            0.0001,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("synth: Nodes = %d, must be positive", c.Nodes)
	case c.OutDegreeAlpha <= 1:
		return fmt.Errorf("synth: OutDegreeAlpha = %v, must exceed 1", c.OutDegreeAlpha)
	case c.OutDegreeMin < 1:
		return fmt.Errorf("synth: OutDegreeMin = %v, must be >= 1", c.OutDegreeMin)
	case c.OutDegreeCap < 1:
		return fmt.Errorf("synth: OutDegreeCap = %d, must be >= 1", c.OutDegreeCap)
	case !inUnit(c.CasualFraction):
		return fmt.Errorf("synth: CasualFraction = %v, must be in [0,1]", c.CasualFraction)
	case c.CasualDegreeMax < 1:
		return fmt.Errorf("synth: CasualDegreeMax = %d, must be >= 1", c.CasualDegreeMax)
	case c.InWeightAlpha <= 0:
		return fmt.Errorf("synth: InWeightAlpha = %v, must be positive", c.InWeightAlpha)
	case c.OrdinaryWeightCap <= 1:
		return fmt.Errorf("synth: OrdinaryWeightCap = %v, must exceed 1", c.OrdinaryWeightCap)
	case c.CelebrityFraction < 0 || c.CelebrityFraction > 1:
		return fmt.Errorf("synth: CelebrityFraction = %v, must be in [0,1]", c.CelebrityFraction)
	case c.CelebrityWeightMax <= c.OrdinaryWeightCap:
		return fmt.Errorf("synth: CelebrityWeightMax = %v, must exceed OrdinaryWeightCap", c.CelebrityWeightMax)
	case c.CommunityMin < 2 || c.CommunityMax < c.CommunityMin:
		return fmt.Errorf("synth: community size bounds [%d, %d] invalid", c.CommunityMin, c.CommunityMax)
	case !inUnit(c.CommunityAffinity):
		return fmt.Errorf("synth: CommunityAffinity = %v, must be in [0,1]", c.CommunityAffinity)
	case !inUnit(c.ReciprocationLocal) || !inUnit(c.ReciprocationTriadic) ||
		!inUnit(c.ReciprocationGlobal) || !inUnit(c.ReciprocationCelebrity):
		return fmt.Errorf("synth: reciprocation probabilities must be in [0,1]")
	case !inUnit(c.CasualResponse):
		return fmt.Errorf("synth: CasualResponse = %v, must be in [0,1]", c.CasualResponse)
	case c.SocialDegree < 1:
		return fmt.Errorf("synth: SocialDegree = %d, must be >= 1", c.SocialDegree)
	case !inUnit(c.PAShareMin) || !inUnit(c.PAShareMax) || c.PAShareMin > c.PAShareMax:
		return fmt.Errorf("synth: PAShare bounds [%v, %v] invalid", c.PAShareMin, c.PAShareMax)
	case !inUnit(c.TriadicShare):
		return fmt.Errorf("synth: TriadicShare = %v, must be in [0,1]", c.TriadicShare)
	case !inUnit(c.PADomestic):
		return fmt.Errorf("synth: PADomestic = %v, must be in [0,1]", c.PADomestic)
	case !inUnit(c.LocatedFraction) || !inUnit(c.TelUserBase):
		return fmt.Errorf("synth: LocatedFraction and TelUserBase must be in [0,1]")
	}
	return nil
}

func inUnit(v float64) bool { return v >= 0 && v <= 1 }
