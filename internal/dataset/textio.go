package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"gplus/internal/crawler"
	"gplus/internal/graph"
	"gplus/internal/profile"
)

// Text interchange format: the paper released its crawl "available to
// the wider research community" as flat files; this codec reads and
// writes the conventional form — one directed edge per line, two
// whitespace-separated opaque user ids, '#' comments allowed. Profiles
// are not part of the edge-list format; ImportEdgeList yields a dataset
// of discovered-but-uncrawled users, which supports every structural
// analysis (Table 4, Figures 3-5).

// WriteEdgeList writes the graph as "from<TAB>to" lines using the
// dataset's service ids, preceded by a size comment.
func (d *Dataset) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	fmt.Fprintf(bw, "# gplus edge list: %d nodes, %d edges\n", d.NumUsers(), d.Graph.NumEdges())
	for u := 0; u < d.NumUsers(); u++ {
		from := d.IDs[u]
		for _, v := range d.Graph.Out(graph.NodeID(u)) {
			if _, err := fmt.Fprintf(bw, "%s\t%s\n", from, d.IDs[v]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ImportEdgeList parses an edge-list stream into a dataset. Node ids are
// assigned in sorted order of the user ids encountered, matching
// FromCrawl's convention. Lines starting with '#' and blank lines are
// skipped; each data line must hold exactly two whitespace-separated
// ids.
func ImportEdgeList(r io.Reader) (*Dataset, error) {
	scanner := bufio.NewScanner(bufio.NewReaderSize(r, 1<<16))
	scanner.Buffer(make([]byte, 0, 1<<20), 1<<24)

	type edge struct{ from, to string }
	var (
		edges []edge
		seen  = make(map[string]bool)
		line  int
	)
	for scanner.Scan() {
		line++
		text := strings.TrimSpace(scanner.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("dataset: edge list line %d: want 2 fields, got %d", line, len(fields))
		}
		edges = append(edges, edge{fields[0], fields[1]})
		seen[fields[0]] = true
		seen[fields[1]] = true
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	if len(seen) == 0 {
		return nil, fmt.Errorf("dataset: edge list holds no edges")
	}

	// Reuse FromCrawl's deterministic construction through a synthetic
	// crawl result with no fetched profiles.
	res := &crawler.Result{
		Profiles:   map[string]profile.Profile{},
		Discovered: seen,
	}
	for _, e := range edges {
		res.Edges = append(res.Edges, crawler.Edge{From: e.from, To: e.to})
	}
	return FromCrawl(res), nil
}
