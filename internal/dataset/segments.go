package dataset

import (
	"fmt"
	"path/filepath"
	"sort"
	"sync"

	"gplus/internal/crawler"
	"gplus/internal/graph"
	"gplus/internal/graph/diskcsr"
	"gplus/internal/profile"
)

// SegmentSink streams crawl edges straight to disk as sorted, compacted
// diskcsr segments instead of accumulating them in RAM — the out-of-core
// collection path for crawls whose edge list outgrows memory. Service
// ids are interned to provisional dense ids in first-seen order; the
// provisional→final permutation is applied when FromCrawlSegments
// compacts the segments, so the finished dataset is byte-identical to
// one built by FromCrawl over the same observations.
//
// The interning table lives only in memory, which is why a sink refuses
// a directory that already holds segments: a crashed crawl resumes by
// replaying its journal through a fresh sink (Config.Resume forwards
// the carried-over edges), not by reusing stale segment files whose ids
// were minted under a table that no longer exists.
type SegmentSink struct {
	mu    sync.Mutex
	dir   string
	w     *diskcsr.Writer
	index map[string]graph.NodeID
	names []string
}

// NewSegmentSink creates a sink writing segments of up to bufferEdges
// edges (0 = diskcsr.DefaultSegmentEdges) under dir, which must not
// already contain segments. met may be nil.
func NewSegmentSink(dir string, bufferEdges int, met *diskcsr.Metrics) (*SegmentSink, error) {
	if segs, err := diskcsr.ListSegments(dir); err != nil {
		return nil, err
	} else if len(segs) > 0 {
		return nil, fmt.Errorf("dataset: segment dir %s already holds %d segments; resume re-streams edges from the crawl journal into a fresh dir", dir, len(segs))
	}
	w, err := diskcsr.NewWriter(dir, bufferEdges, met)
	if err != nil {
		return nil, err
	}
	return &SegmentSink{
		dir:   dir,
		w:     w,
		index: make(map[string]graph.NodeID),
	}, nil
}

// ObserveEdge implements crawler.EdgeSink. Safe for concurrent use.
func (s *SegmentSink) ObserveEdge(from, to string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Add(s.intern(from), s.intern(to))
}

// intern returns the provisional id for a service id; caller holds s.mu.
func (s *SegmentSink) intern(id string) graph.NodeID {
	if n, ok := s.index[id]; ok {
		return n
	}
	n := graph.NodeID(len(s.names))
	s.index[id] = n
	s.names = append(s.names, id)
	return n
}

// NumIDs returns how many distinct service ids the sink has interned.
func (s *SegmentSink) NumIDs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.names)
}

var _ crawler.EdgeSink = (*SegmentSink)(nil)

// FromCrawlSegments finishes an out-of-core crawl: it flushes the sink,
// compacts its segments into <dir>/graph.v2 — remapped from the sink's
// first-seen interning order to the same sorted-service-id order
// FromCrawl assigns — writes the profile column, and returns the dataset
// opened over the memory-mapped graph. Call Close on the returned
// dataset when done; the segment directory may be deleted afterwards.
func FromCrawlSegments(res *crawler.Result, sink *SegmentSink, dir string, met *diskcsr.Metrics) (*Dataset, error) {
	return fromCrawlSegments(res, sink, dir, met, false)
}

// FromCrawlSegmentsCompressed is FromCrawlSegments with a
// gzip-compressed profile column.
func FromCrawlSegmentsCompressed(res *crawler.Result, sink *SegmentSink, dir string, met *diskcsr.Metrics) (*Dataset, error) {
	return fromCrawlSegments(res, sink, dir, met, true)
}

func fromCrawlSegments(res *crawler.Result, sink *SegmentSink, dir string, met *diskcsr.Metrics, compress bool) (*Dataset, error) {
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if err := sink.w.Flush(); err != nil {
		return nil, fmt.Errorf("dataset: flushing segments: %w", err)
	}

	// The roster is every id the crawl discovered; the sink's ids are a
	// subset (seeds with empty circles never appear on an edge), but the
	// union guards hand-built Results whose Discovered map is incomplete.
	roster := make(map[string]bool, len(res.Discovered))
	for id := range res.Discovered {
		roster[id] = true
	}
	for _, id := range sink.names {
		roster[id] = true
	}
	ids := make([]string, 0, len(roster))
	for id := range roster {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	d := &Dataset{
		IDs:      ids,
		Profiles: make([]profile.Profile, len(ids)),
		Crawled:  make([]bool, len(ids)),
	}
	d.buildIndex()
	for id, p := range res.Profiles {
		node := d.index[id]
		d.Profiles[node] = p
		d.Crawled[node] = true
	}

	remap := make([]graph.NodeID, len(sink.names))
	for prov, id := range sink.names {
		remap[prov] = d.index[id]
	}
	if err := d.saveProfilesAndV2Graph(dir, sink.dir, remap, met, compress); err != nil {
		return nil, err
	}
	m, err := diskcsr.Open(filepath.Join(dir, graphV2File), diskcsr.Options{Metrics: met})
	if err != nil {
		return nil, fmt.Errorf("dataset: opening compacted graph: %w", err)
	}
	d.view = m
	d.closer = m
	if err := d.Validate(); err != nil {
		m.Close()
		return nil, err
	}
	return d, nil
}
