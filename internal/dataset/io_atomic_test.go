package dataset

import (
	"errors"
	"reflect"
	"testing"

	"gplus/internal/graph"
)

// TestSaveSurvivesCrash kills a re-save at every durability step and
// checks the directory still loads — each file is either fully the old
// version or fully the new one, never a torn hybrid. Before save used
// the temp-rename contract, the first write would truncate graph.bin in
// place and a crash destroyed the only copy.
func TestSaveSurvivesCrash(t *testing.T) {
	_, res := fixtures(t)
	orig := FromCrawl(res)
	dir := t.TempDir()
	if err := orig.Save(dir); err != nil {
		t.Fatalf("initial save: %v", err)
	}

	// A second dataset over the same user roster (so any mix of old and
	// new files still agrees on the node count) but a different graph
	// and a flipped profile column.
	mod := &Dataset{
		IDs:      append([]string(nil), orig.IDs...),
		Profiles: append(orig.Profiles[:0:0], orig.Profiles...),
		Crawled:  append([]bool(nil), orig.Crawled...),
	}
	b := graph.NewBuilder(len(mod.IDs), len(mod.IDs))
	for i := 0; i+1 < len(mod.IDs); i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	b.EnsureNode(graph.NodeID(len(mod.IDs) - 1))
	mod.Graph = b.Build()
	mod.Crawled[0] = !orig.Crawled[0]
	mod.buildIndex()
	if reflect.DeepEqual(mod.Graph, orig.Graph) {
		t.Fatal("test needs the re-saved graph to differ")
	}

	boom := errors.New("simulated crash")
	steps := []string{
		"graph.bin:written",
		"graph.bin:synced",
		"graph.bin:renamed",
		"profiles.jsonl:written",
		"profiles.jsonl:synced",
	}
	for _, step := range steps {
		t.Run(step, func(t *testing.T) {
			saveStepHook = func(s string) error {
				if s == step {
					return boom
				}
				return nil
			}
			defer func() { saveStepHook = nil }()
			if err := mod.Save(dir); !errors.Is(err, boom) {
				t.Fatalf("save did not surface the crash: %v", err)
			}
			saveStepHook = nil

			got, err := Load(dir)
			if err != nil {
				t.Fatalf("dataset unloadable after crash at %q: %v", step, err)
			}
			graphIsOld := reflect.DeepEqual(got.Graph, orig.Graph)
			graphIsNew := reflect.DeepEqual(got.Graph, mod.Graph)
			if !graphIsOld && !graphIsNew {
				t.Fatal("graph.bin is neither the old nor the new graph")
			}
			profilesOld := got.Crawled[0] == orig.Crawled[0]
			profilesNew := got.Crawled[0] == mod.Crawled[0]
			if !profilesOld && !profilesNew {
				t.Fatal("profiles are neither old nor new")
			}
			// The rename is the commit point: before graph.bin:renamed
			// completes nothing may have changed, and the profile file
			// can never commit before the graph's rename step.
			if step == "graph.bin:written" || step == "graph.bin:synced" {
				if !graphIsOld || !profilesOld {
					t.Fatalf("crash at %q leaked partial state", step)
				}
			}
			if !profilesOld && graphIsOld {
				t.Fatal("profiles committed before the graph did")
			}
		})
	}

	// With the hook gone the save completes and the new data lands.
	if err := mod.Save(dir); err != nil {
		t.Fatalf("final save: %v", err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Graph, mod.Graph) || got.Crawled[0] != mod.Crawled[0] {
		t.Fatal("completed save did not persist the new dataset")
	}
}
