package dataset

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"gplus/internal/crawler"
	"gplus/internal/gplusd"
	"gplus/internal/graph"
	"gplus/internal/profile"
	"gplus/internal/synth"
)

var (
	dsOnce     sync.Once
	dsUniverse *synth.Universe
	dsCrawl    *crawler.Result
)

// fixtures crawls a small universe once, shared across tests.
func fixtures(t *testing.T) (*synth.Universe, *crawler.Result) {
	t.Helper()
	dsOnce.Do(func() {
		cfg := synth.DefaultConfig(1_500)
		cfg.Seed = 31
		u, err := synth.Generate(cfg)
		if err != nil {
			panic(err)
		}
		ts := httptest.NewServer(gplusd.New(u, gplusd.Options{}))
		defer ts.Close()
		seed := u.IDs[graph.TopByInDegree(u.Graph, 1, 1)[0]]
		res, err := crawler.Crawl(context.Background(), crawler.Config{
			BaseURL: ts.URL,
			Seeds:   []string{seed},
			Workers: 4,
			FetchIn: true, FetchOut: true,
		})
		if err != nil {
			panic(err)
		}
		dsUniverse, dsCrawl = u, res
	})
	return dsUniverse, dsCrawl
}

func TestFromCrawlMatchesGroundTruth(t *testing.T) {
	u, res := fixtures(t)
	d := FromCrawl(res)
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}

	// The seed's WCC covers (almost all of) the generated universe; the
	// crawled graph must reproduce its structure exactly.
	wcc := graph.WCC(u.Graph, 1)
	seedComp := wcc.Comp[graph.TopByInDegree(u.Graph, 1, 1)[0]]
	wantUsers := 0
	var wantEdges int64
	for i := 0; i < u.NumUsers(); i++ {
		if wcc.Comp[i] == seedComp {
			wantUsers++
			wantEdges += int64(u.Graph.OutDegree(graph.NodeID(i)))
		}
	}
	if d.NumUsers() != wantUsers {
		t.Errorf("dataset has %d users, want %d", d.NumUsers(), wantUsers)
	}
	if d.Graph.NumEdges() != wantEdges {
		t.Errorf("dataset has %d edges, want %d", d.Graph.NumEdges(), wantEdges)
	}
	if d.NumCrawled() != wantUsers {
		t.Errorf("crawled count %d, want %d", d.NumCrawled(), wantUsers)
	}

	// Edge-level spot check through the id mapping.
	for i := 0; i < u.NumUsers() && i < 200; i++ {
		if wcc.Comp[i] != seedComp {
			continue
		}
		node, ok := d.NodeOf(u.IDs[i])
		if !ok {
			t.Fatalf("user %s missing from dataset", u.IDs[i])
		}
		if got, want := d.Graph.OutDegree(node), u.Graph.OutDegree(graph.NodeID(i)); got != want {
			t.Fatalf("out-degree of %s = %d, want %d", u.IDs[i], got, want)
		}
		if d.Profiles[node].Public != u.Profiles[i].Public {
			t.Fatalf("profile public set mismatch for %s", u.IDs[i])
		}
	}
}

func TestFromCrawlDeterministic(t *testing.T) {
	_, res := fixtures(t)
	a, b := FromCrawl(res), FromCrawl(res)
	if !reflect.DeepEqual(a.IDs, b.IDs) || !reflect.DeepEqual(a.Graph, b.Graph) {
		t.Error("FromCrawl not deterministic")
	}
}

func TestFromUniverse(t *testing.T) {
	u, _ := fixtures(t)
	d := FromUniverse(u)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.NumUsers() != u.NumUsers() || d.NumCrawled() != u.NumUsers() {
		t.Errorf("users=%d crawled=%d, want %d", d.NumUsers(), d.NumCrawled(), u.NumUsers())
	}
	node, ok := d.NodeOf(u.IDs[42])
	if !ok || node != 42 {
		t.Errorf("NodeOf(%q) = %d,%v", u.IDs[42], node, ok)
	}
	if _, ok := d.NodeOf("nope"); ok {
		t.Error("unknown id resolved")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	u, res := fixtures(t)
	_ = u
	d := FromCrawl(res)
	dir := filepath.Join(t.TempDir(), "ds")
	if err := d.Save(dir); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !reflect.DeepEqual(got.IDs, d.IDs) {
		t.Error("IDs differ after round trip")
	}
	if !reflect.DeepEqual(got.Crawled, d.Crawled) {
		t.Error("Crawled flags differ after round trip")
	}
	if !reflect.DeepEqual(got.Graph, d.Graph) {
		t.Error("graph differs after round trip")
	}
	if !reflect.DeepEqual(got.Profiles, d.Profiles) {
		for i := range got.Profiles {
			if !reflect.DeepEqual(got.Profiles[i], d.Profiles[i]) {
				t.Fatalf("profile %d differs:\n got %+v\nwant %+v", i, got.Profiles[i], d.Profiles[i])
			}
		}
	}
}

func TestSaveCompressedRoundTrip(t *testing.T) {
	_, res := fixtures(t)
	d := FromCrawl(res)
	dir := filepath.Join(t.TempDir(), "ds")
	if err := d.SaveCompressed(dir); err != nil {
		t.Fatalf("SaveCompressed: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "profiles.jsonl")); !os.IsNotExist(err) {
		t.Fatal("plain profiles file should not exist in compressed form")
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatalf("Load compressed: %v", err)
	}
	if !reflect.DeepEqual(got.IDs, d.IDs) || !reflect.DeepEqual(got.Profiles, d.Profiles) {
		t.Error("compressed round trip lost data")
	}
	if !reflect.DeepEqual(got.Graph, d.Graph) {
		t.Error("graph differs after compressed round trip")
	}

	// A compressed dataset must be smaller than the plain one.
	plainDir := filepath.Join(t.TempDir(), "plain")
	if err := d.Save(plainDir); err != nil {
		t.Fatal(err)
	}
	gzInfo, err := os.Stat(filepath.Join(dir, "profiles.jsonl.gz"))
	if err != nil {
		t.Fatal(err)
	}
	plainInfo, err := os.Stat(filepath.Join(plainDir, "profiles.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if gzInfo.Size() >= plainInfo.Size() {
		t.Errorf("compressed %d bytes >= plain %d bytes", gzInfo.Size(), plainInfo.Size())
	}
}

func TestLoadRejectsCorruptGzip(t *testing.T) {
	_, res := fixtures(t)
	d := FromCrawl(res)
	dir := filepath.Join(t.TempDir(), "ds")
	if err := d.SaveCompressed(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "profiles.jsonl.gz"), []byte("not gzip"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Error("corrupt gzip accepted")
	}
}

func TestLoadRejectsCorruptProfiles(t *testing.T) {
	u, res := fixtures(t)
	_ = u
	d := FromCrawl(res)
	dir := filepath.Join(t.TempDir(), "ds")
	if err := d.Save(dir); err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"not json":            "not json at all\n",
		"record without id":   `{"name":"x","crawled":true}` + "\n",
		"wrong record counts": `{"id":"only-one","name":"x"}` + "\n",
	}
	for name, content := range cases {
		if err := os.WriteFile(filepath.Join(dir, "profiles.jsonl"), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(dir); err == nil {
			t.Errorf("%s: corrupt profiles accepted", name)
		}
	}
}

func TestLoadRejectsCorruptGraph(t *testing.T) {
	_, res := fixtures(t)
	d := FromCrawl(res)
	dir := filepath.Join(t.TempDir(), "ds")
	if err := d.Save(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "graph.bin"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Error("corrupt graph accepted")
	}
}

func TestSaveRejectsInvalidDataset(t *testing.T) {
	d := &Dataset{
		Graph:    graph.FromEdges(2, 0, 1),
		Profiles: make([]profile.Profile, 3), // mismatch
		IDs:      []string{"a", "b", "c"},
		Crawled:  make([]bool, 3),
	}
	if err := d.Save(t.TempDir()); err == nil {
		t.Error("invalid dataset saved")
	}
}

func TestLoadMissingDir(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Fatal("expected error for missing dataset")
	}
}

func TestValidateCatchesMismatch(t *testing.T) {
	d := &Dataset{
		Graph:    graph.FromEdges(2, 0, 1),
		Profiles: make([]profile.Profile, 3),
		IDs:      []string{"a", "b", "c"},
		Crawled:  make([]bool, 3),
	}
	if err := d.Validate(); err == nil {
		t.Fatal("graph/user count mismatch accepted")
	}
	d2 := &Dataset{
		Graph:    graph.FromEdges(2, 0, 1),
		Profiles: make([]profile.Profile, 1),
		IDs:      []string{"a", "b"},
		Crawled:  make([]bool, 2),
	}
	if err := d2.Validate(); err == nil {
		t.Fatal("column length mismatch accepted")
	}
}
