package dataset

import (
	"gplus/internal/geo"
	"gplus/internal/profile"
)

// ResolveCountries runs the §4 place-resolution pipeline over profiles
// whose "places lived" field is public but whose country is not yet
// identified: first the free-text place name is looked up in the
// gazetteer, then the map coordinates fall back to the nearest
// reference-country centroid within maxMiles. It returns how many
// profiles were resolved.
//
// This is a no-op on datasets whose source already geocoded the place
// markers; it exists for crawls of services (or gplusd with OmitGeocode)
// that expose only raw place text and coordinates, which is what the
// paper's crawler had to work with.
func (d *Dataset) ResolveCountries(maxMiles float64) int {
	if maxMiles <= 0 {
		maxMiles = 600
	}
	resolved := 0
	for i := range d.Profiles {
		p := &d.Profiles[i]
		if !p.Public.Has(profile.AttrPlacesLived) || p.CountryCode != "" {
			continue
		}
		if _, code, ok := geo.ResolvePlace(p.Place); ok {
			p.CountryCode = code
			resolved++
			continue
		}
		if p.Loc != (geo.Point{}) {
			if code, ok := geo.CountryOf(p.Loc, maxMiles); ok {
				p.CountryCode = code
				resolved++
			}
		}
	}
	return resolved
}
