package dataset

import (
	"context"
	"net/http/httptest"
	"testing"

	"gplus/internal/crawler"
	"gplus/internal/gplusd"
	"gplus/internal/graph"
	"gplus/internal/profile"
	"gplus/internal/synth"
)

// TestResolveCountriesFromRawPlaces runs the §4 pipeline the way the
// paper had to: crawl a service that exposes only raw place text and map
// coordinates (no country), then resolve countries on the analysis side
// and compare the recovered shares against ground truth.
func TestResolveCountriesFromRawPlaces(t *testing.T) {
	cfg := synth.DefaultConfig(8_000)
	cfg.Seed = 606
	u, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(gplusd.New(u, gplusd.Options{OmitGeocode: true}))
	defer ts.Close()
	seed := u.IDs[graph.TopByInDegree(u.Graph, 1, 1)[0]]
	res, err := crawler.Crawl(context.Background(), crawler.Config{
		BaseURL: ts.URL, Seeds: []string{seed}, Workers: 6,
		FetchIn: true, FetchOut: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds := FromCrawl(res)

	// The served data carries no country identifiers.
	unresolvedBefore := 0
	for i := range ds.Profiles {
		if ds.Profiles[i].Public.Has(profile.AttrPlacesLived) {
			if ds.Profiles[i].CountryCode != "" {
				t.Fatal("server leaked a country despite OmitGeocode")
			}
			unresolvedBefore++
		}
	}
	if unresolvedBefore == 0 {
		t.Fatal("no located users in the crawl")
	}

	resolved := ds.ResolveCountries(600)
	if resolved == 0 {
		t.Fatal("resolution pipeline recovered nothing")
	}
	// Every reference-table resident resolves by name (the generator
	// writes country names); the "Other" users may or may not resolve by
	// coordinates.
	truthByID := make(map[string]string, u.NumUsers())
	for i, id := range u.IDs {
		truthByID[id] = u.HomeCountry[i]
	}
	var checked, correct int
	for i := range ds.Profiles {
		p := &ds.Profiles[i]
		if !p.Public.Has(profile.AttrPlacesLived) {
			continue
		}
		truth := truthByID[ds.IDs[i]]
		if truth == synth.OtherCountry {
			continue // scattered other-world users have no table country
		}
		checked++
		if p.CountryCode == truth {
			correct++
		}
	}
	if checked == 0 {
		t.Fatal("no table-country users to check")
	}
	if acc := float64(correct) / float64(checked); acc < 0.98 {
		t.Errorf("resolution accuracy = %.3f over %d users, want >= 0.98", acc, checked)
	}
}

func TestResolveCountriesCoordinateFallback(t *testing.T) {
	// A profile with an unknown place string but coordinates near Paris
	// resolves to FR through the centroid fallback.
	d := &Dataset{
		Graph:    graph.FromEdges(1, 0, 0), // no edges; single node
		Profiles: make([]profile.Profile, 1),
		IDs:      []string{"x"},
		Crawled:  []bool{true},
	}
	p := &d.Profiles[0]
	p.Public = p.Public.With(profile.AttrPlacesLived)
	p.Place = "Chez Moi"
	p.Loc.Lat, p.Loc.Lon = 48.9, 2.3
	if got := d.ResolveCountries(0); got != 1 {
		t.Fatalf("resolved %d, want 1", got)
	}
	if p.CountryCode != "FR" {
		t.Errorf("resolved to %q, want FR", p.CountryCode)
	}
	// Idempotent: already-resolved profiles are untouched.
	if got := d.ResolveCountries(0); got != 0 {
		t.Errorf("second pass resolved %d, want 0", got)
	}
}
