package dataset

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestEdgeListRoundTrip(t *testing.T) {
	_, res := fixtures(t)
	d := FromCrawl(res)
	var buf bytes.Buffer
	if err := d.WriteEdgeList(&buf); err != nil {
		t.Fatalf("WriteEdgeList: %v", err)
	}
	got, err := ImportEdgeList(&buf)
	if err != nil {
		t.Fatalf("ImportEdgeList: %v", err)
	}
	if !reflect.DeepEqual(got.IDs, d.IDs) {
		t.Error("id space differs after edge-list round trip")
	}
	if !reflect.DeepEqual(got.Graph, d.Graph) {
		t.Error("graph differs after edge-list round trip")
	}
	// Edge-list datasets carry no profiles.
	if got.NumCrawled() != 0 {
		t.Errorf("imported dataset claims %d crawled users", got.NumCrawled())
	}
}

func TestImportEdgeListParsing(t *testing.T) {
	in := "# comment\n\n a b \nb\tc\n"
	d, err := ImportEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if d.NumUsers() != 3 || d.Graph.NumEdges() != 2 {
		t.Fatalf("users=%d edges=%d", d.NumUsers(), d.Graph.NumEdges())
	}
	node, ok := d.NodeOf("a")
	if !ok {
		t.Fatal("id a missing")
	}
	if d.Graph.OutDegree(node) != 1 {
		t.Errorf("out-degree of a = %d", d.Graph.OutDegree(node))
	}
}

func TestImportEdgeListErrors(t *testing.T) {
	cases := []string{
		"",
		"# only comments\n",
		"a b c\n",
		"lonely\n",
	}
	for _, c := range cases {
		if _, err := ImportEdgeList(strings.NewReader(c)); err == nil {
			t.Errorf("input %q accepted", c)
		}
	}
}
