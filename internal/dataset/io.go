package dataset

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"gplus/internal/gplusapi"
	"gplus/internal/graph"
)

// On-disk layout: <dir>/graph.bin (compact CSR) and <dir>/profiles.jsonl
// (one JSON record per user in node-id order). The JSONL form keeps the
// profile columns greppable and diffable; the graph stays binary because
// edge lists dominate the size.

const (
	graphFile      = "graph.bin"
	profilesFile   = "profiles.jsonl"
	profilesGzFile = "profiles.jsonl.gz"
)

// userRecord is one line of profiles.jsonl.
type userRecord struct {
	gplusapi.ProfileDoc
	Crawled bool `json:"crawled"`
}

// Save writes the dataset under dir, creating it if needed.
func (d *Dataset) Save(dir string) error {
	return d.save(dir, false)
}

// SaveCompressed writes the dataset with a gzip-compressed profile
// column (profiles.jsonl.gz), roughly quartering the disk footprint of
// million-user datasets. Load reads either form transparently.
func (d *Dataset) SaveCompressed(dir string) error {
	return d.save(dir, true)
}

func (d *Dataset) save(dir string, compress bool) error {
	if err := d.Validate(); err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	gf, err := os.Create(filepath.Join(dir, graphFile))
	if err != nil {
		return err
	}
	defer gf.Close()
	if err := graph.WriteBinary(gf, d.Graph); err != nil {
		return fmt.Errorf("dataset: writing graph: %w", err)
	}
	if err := gf.Close(); err != nil {
		return err
	}

	name := profilesFile
	if compress {
		name = profilesGzFile
	}
	pf, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer pf.Close()
	var w io.Writer = pf
	var gz *gzip.Writer
	if compress {
		gz = gzip.NewWriter(pf)
		w = gz
	}
	if err := d.writeProfiles(w); err != nil {
		return fmt.Errorf("dataset: writing profiles: %w", err)
	}
	if gz != nil {
		if err := gz.Close(); err != nil {
			return err
		}
	}
	return pf.Close()
}

func (d *Dataset) writeProfiles(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	enc := json.NewEncoder(bw)
	for i := range d.IDs {
		rec := userRecord{
			ProfileDoc: gplusapi.FromProfile(d.IDs[i], &d.Profiles[i]),
			Crawled:    d.Crawled[i],
		}
		if err := enc.Encode(&rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads a dataset saved by Save.
func Load(dir string) (*Dataset, error) {
	gf, err := os.Open(filepath.Join(dir, graphFile))
	if err != nil {
		return nil, err
	}
	defer gf.Close()
	g, err := graph.ReadBinary(gf)
	if err != nil {
		return nil, fmt.Errorf("dataset: reading graph: %w", err)
	}

	// Prefer the plain form; fall back to the gzip form.
	var profiles io.Reader
	pf, err := os.Open(filepath.Join(dir, profilesFile))
	switch {
	case err == nil:
		profiles = pf
	case os.IsNotExist(err):
		pf, err = os.Open(filepath.Join(dir, profilesGzFile))
		if err != nil {
			return nil, err
		}
		gz, err := gzip.NewReader(pf)
		if err != nil {
			pf.Close()
			return nil, fmt.Errorf("dataset: opening compressed profiles: %w", err)
		}
		defer gz.Close()
		profiles = gz
	default:
		return nil, err
	}
	defer pf.Close()
	d := &Dataset{Graph: g}
	if err := d.readProfiles(profiles); err != nil {
		return nil, fmt.Errorf("dataset: reading profiles: %w", err)
	}
	d.buildIndex()
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

func (d *Dataset) readProfiles(r io.Reader) error {
	scanner := bufio.NewScanner(bufio.NewReaderSize(r, 1<<16))
	scanner.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for scanner.Scan() {
		line++
		var rec userRecord
		if err := json.Unmarshal(scanner.Bytes(), &rec); err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
		if rec.ID == "" {
			return fmt.Errorf("line %d: record without id", line)
		}
		d.IDs = append(d.IDs, rec.ID)
		d.Profiles = append(d.Profiles, rec.ToProfile())
		d.Crawled = append(d.Crawled, rec.Crawled)
	}
	return scanner.Err()
}
