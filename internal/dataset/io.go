package dataset

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"gplus/internal/gplusapi"
	"gplus/internal/graph"
	"gplus/internal/graph/diskcsr"
)

// On-disk layout: <dir>/graph.bin (v1 compact CSR) or <dir>/graph.v2
// (varint/delta-compressed CSR, openable via mmap without materializing
// — see internal/graph/diskcsr), plus <dir>/profiles.jsonl (one JSON
// record per user in node-id order). The JSONL form keeps the profile
// columns greppable and diffable; the graph stays binary because edge
// lists dominate the size. Load prefers the v2 graph when both exist;
// Save/SaveV2 each remove the other graph form after committing theirs,
// so a directory never carries two graphs that could drift apart.

const (
	graphFile      = "graph.bin"
	graphV2File    = "graph.v2"
	profilesFile   = "profiles.jsonl"
	profilesGzFile = "profiles.jsonl.gz"
)

// Options controls how LoadWith opens a dataset.
type Options struct {
	// Mapped serves the graph straight from the memory-mapped v2 file
	// instead of materializing it into RAM: analyses then fault in only
	// the pages they touch, bounding resident memory far below the edge
	// count. Requires a v2 graph (SaveV2 or FromCrawlSegments); a
	// dataset holding only v1 graph.bin loads in RAM regardless.
	Mapped bool
}

// userRecord is one line of profiles.jsonl.
type userRecord struct {
	gplusapi.ProfileDoc
	Crawled bool `json:"crawled"`
}

// Save writes the dataset under dir, creating it if needed.
func (d *Dataset) Save(dir string) error {
	return d.save(dir, false)
}

// SaveCompressed writes the dataset with a gzip-compressed profile
// column (profiles.jsonl.gz), roughly quartering the disk footprint of
// million-user datasets. Load reads either form transparently.
func (d *Dataset) SaveCompressed(dir string) error {
	return d.save(dir, true)
}

// SaveV2 writes the dataset with the graph in the v2 on-disk CSR form
// (graph.v2: varint/delta-compressed adjacency with an O(1)-seek index)
// instead of v1 graph.bin. A v2 graph is typically 2-4x smaller and can
// be opened memory-mapped via LoadWith(dir, Options{Mapped: true}),
// bounding analysis RSS by the pages actually touched. The graph is
// streamed from the dataset's View, so saving a mapped dataset never
// materializes it.
func (d *Dataset) SaveV2(dir string) error {
	return d.saveV2(dir, false)
}

// SaveV2Compressed is SaveV2 with a gzip-compressed profile column.
func (d *Dataset) SaveV2Compressed(dir string) error {
	return d.saveV2(dir, true)
}

func (d *Dataset) saveV2(dir string, compress bool) error {
	if err := d.Validate(); err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := diskcsr.WriteGraph(filepath.Join(dir, graphV2File), d.View()); err != nil {
		return fmt.Errorf("dataset: writing v2 graph: %w", err)
	}
	os.Remove(filepath.Join(dir, graphFile)) //nolint:errcheck — superseded form
	return d.saveProfiles(dir, compress)
}

// saveProfilesAndV2Graph is FromCrawlSegments' save path: the graph
// arrives by compacting segDir (through remap) rather than from a View.
func (d *Dataset) saveProfilesAndV2Graph(dir, segDir string, remap []graph.NodeID, met *diskcsr.Metrics, compress bool) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	_, err := diskcsr.Compact(segDir, filepath.Join(dir, graphV2File), diskcsr.CompactOptions{
		NumNodes: len(d.IDs),
		Remap:    remap,
		Metrics:  met,
	})
	if err != nil {
		return fmt.Errorf("dataset: compacting segments: %w", err)
	}
	os.Remove(filepath.Join(dir, graphFile)) //nolint:errcheck — superseded form
	return d.saveProfiles(dir, compress)
}

// saveStepHook, when non-nil, is invoked between the durability steps of
// save with a label naming the step about to run. Returning an error
// aborts the save at exactly that point — the test's stand-in for a
// crash, since every step boundary is also an fsync boundary.
var saveStepHook func(step string) error

func stepHook(step string) error {
	if saveStepHook != nil {
		return saveStepHook(step)
	}
	return nil
}

// writeFileAtomic writes the output of write to dir/name via a temp
// file: write, fsync, close, rename, fsync dir — the checkpoint
// contract of internal/crawler. A crash at any point leaves either the
// old file or the new one under the final name, never a torn mix, so a
// failed re-save cannot destroy the only copy of a dataset.
func writeFileAtomic(dir, name string, write func(io.Writer) error) error {
	tmp, err := os.CreateTemp(dir, "."+name+"-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := stepHook(name + ":written"); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := stepHook(name + ":synced"); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name)); err != nil {
		return err
	}
	syncDir(dir)
	return stepHook(name + ":renamed")
}

// syncDir fsyncs a directory so a completed rename survives power loss.
// Errors are swallowed: some platforms cannot fsync directories, and the
// rename is already atomic for every observer except a badly timed
// power cut.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	defer d.Close()
	d.Sync() //nolint:errcheck — best-effort durability, see above
}

func (d *Dataset) save(dir string, compress bool) error {
	if err := d.Validate(); err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	err := writeFileAtomic(dir, graphFile, func(w io.Writer) error {
		bw := bufio.NewWriterSize(w, 1<<16)
		if err := graph.WriteBinary(bw, d.View()); err != nil {
			return err
		}
		return bw.Flush()
	})
	if err != nil {
		return fmt.Errorf("dataset: writing graph: %w", err)
	}
	os.Remove(filepath.Join(dir, graphV2File)) //nolint:errcheck — superseded form
	return d.saveProfiles(dir, compress)
}

func (d *Dataset) saveProfiles(dir string, compress bool) error {
	name := profilesFile
	if compress {
		name = profilesGzFile
	}
	err := writeFileAtomic(dir, name, func(w io.Writer) error {
		if compress {
			gz := gzip.NewWriter(w)
			if err := d.writeProfiles(gz); err != nil {
				return err
			}
			return gz.Close()
		}
		return d.writeProfiles(w)
	})
	if err != nil {
		return fmt.Errorf("dataset: writing profiles: %w", err)
	}
	return nil
}

func (d *Dataset) writeProfiles(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	enc := json.NewEncoder(bw)
	for i := range d.IDs {
		rec := userRecord{
			ProfileDoc: gplusapi.FromProfile(d.IDs[i], &d.Profiles[i]),
			Crawled:    d.Crawled[i],
		}
		if err := enc.Encode(&rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads a dataset saved by Save or SaveV2, materialized in RAM.
func Load(dir string) (*Dataset, error) {
	return LoadWith(dir, Options{})
}

// LoadWith reads a dataset with explicit backend options. The v2 graph
// form is preferred when present; with Options.Mapped it is served
// memory-mapped and the caller must Close the returned dataset.
func LoadWith(dir string, opt Options) (*Dataset, error) {
	d := &Dataset{}
	v2Path := filepath.Join(dir, graphV2File)
	if _, err := os.Stat(v2Path); err == nil {
		m, err := diskcsr.Open(v2Path, diskcsr.Options{})
		if err != nil {
			return nil, fmt.Errorf("dataset: opening v2 graph: %w", err)
		}
		if opt.Mapped {
			d.view = m
			d.closer = m
		} else {
			d.Graph, err = m.Materialize()
			m.Close() //nolint:errcheck — read-only mapping
			if err != nil {
				return nil, fmt.Errorf("dataset: materializing v2 graph: %w", err)
			}
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	} else {
		gf, err := os.Open(filepath.Join(dir, graphFile))
		if err != nil {
			return nil, err
		}
		defer gf.Close()
		if d.Graph, err = graph.ReadBinary(gf); err != nil {
			return nil, fmt.Errorf("dataset: reading graph: %w", err)
		}
	}
	if err := d.loadProfiles(dir); err != nil {
		d.Close() //nolint:errcheck — unwinding a failed open
		return nil, err
	}
	d.buildIndex()
	if err := d.Validate(); err != nil {
		d.Close() //nolint:errcheck — unwinding a failed open
		return nil, err
	}
	return d, nil
}

func (d *Dataset) loadProfiles(dir string) error {
	// Prefer the plain form; fall back to the gzip form.
	var profiles io.Reader
	pf, err := os.Open(filepath.Join(dir, profilesFile))
	switch {
	case err == nil:
		profiles = pf
	case os.IsNotExist(err):
		pf, err = os.Open(filepath.Join(dir, profilesGzFile))
		if err != nil {
			return err
		}
		gz, err := gzip.NewReader(pf)
		if err != nil {
			pf.Close()
			return fmt.Errorf("dataset: opening compressed profiles: %w", err)
		}
		defer gz.Close()
		profiles = gz
	default:
		return err
	}
	defer pf.Close()
	if err := d.readProfiles(profiles); err != nil {
		return fmt.Errorf("dataset: reading profiles: %w", err)
	}
	return nil
}

func (d *Dataset) readProfiles(r io.Reader) error {
	scanner := bufio.NewScanner(bufio.NewReaderSize(r, 1<<16))
	scanner.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for scanner.Scan() {
		line++
		var rec userRecord
		if err := json.Unmarshal(scanner.Bytes(), &rec); err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
		if rec.ID == "" {
			return fmt.Errorf("line %d: record without id", line)
		}
		d.IDs = append(d.IDs, rec.ID)
		d.Profiles = append(d.Profiles, rec.ToProfile())
		d.Crawled = append(d.Crawled, rec.Crawled)
	}
	return scanner.Err()
}
