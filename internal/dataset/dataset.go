// Package dataset turns raw crawl output into the analysis-ready form
// used by the study — a dense-id directed graph plus per-node profile
// columns — and persists it to disk.
package dataset

import (
	"fmt"
	"io"
	"sort"

	"gplus/internal/crawler"
	"gplus/internal/graph"
	"gplus/internal/profile"
	"gplus/internal/synth"
)

// Dataset is the collected Google+ sample: every discovered user gets a
// dense node id; users whose profile page was fetched carry profile data
// and Crawled=true, while frontier users discovered only through circle
// lists carry an empty profile.
type Dataset struct {
	Graph    *graph.Graph
	Profiles []profile.Profile
	IDs      []string
	Crawled  []bool

	// view, when non-nil, is the graph behind an alternate backend (the
	// mmap-backed v2 form); Graph may then be nil. Access through View().
	view graph.View
	// closer releases the view's resources (the mmap); nil for in-RAM
	// datasets, where Close is a no-op.
	closer io.Closer

	index map[string]graph.NodeID
}

// Close releases the dataset's graph mapping, if any. Datasets loaded
// fully into RAM have nothing to release and Close returns nil. The
// graph must not be used after Close.
func (d *Dataset) Close() error {
	if d.closer == nil {
		return nil
	}
	c := d.closer
	d.closer = nil
	return c.Close()
}

// NumUsers returns the number of discovered users (graph nodes).
func (d *Dataset) NumUsers() int { return len(d.IDs) }

// View returns the graph as the read surface the analysis kernels are
// written against: the memory-mapped backend when the dataset was
// opened with Options.Mapped, the in-RAM Graph otherwise. Callers that
// only traverse should prefer this over the Graph field — code written
// against View runs over either backend unchanged.
func (d *Dataset) View() graph.View {
	if d.view != nil {
		return d.view
	}
	return d.Graph
}

// NumCrawled returns how many users have fetched profiles.
func (d *Dataset) NumCrawled() int {
	n := 0
	for _, c := range d.Crawled {
		if c {
			n++
		}
	}
	return n
}

// NodeOf resolves a service id to the dense node id.
func (d *Dataset) NodeOf(id string) (graph.NodeID, bool) {
	n, ok := d.index[id]
	return n, ok
}

// buildIndex populates the id lookup; called by constructors and Load.
func (d *Dataset) buildIndex() {
	d.index = make(map[string]graph.NodeID, len(d.IDs))
	for i, id := range d.IDs {
		d.index[id] = graph.NodeID(i)
	}
}

// Validate checks cross-field invariants.
func (d *Dataset) Validate() error {
	n := len(d.IDs)
	if len(d.Profiles) != n || len(d.Crawled) != n {
		return fmt.Errorf("dataset: column lengths differ: %d ids, %d profiles, %d crawled flags",
			n, len(d.Profiles), len(d.Crawled))
	}
	g := d.View()
	if g.NumNodes() != n {
		return fmt.Errorf("dataset: graph has %d nodes for %d users", g.NumNodes(), n)
	}
	if d.Graph != nil {
		return d.Graph.Validate()
	}
	// A mapped view was already fully verified by its decoder on open.
	return nil
}

// FromCrawl builds a dataset from raw crawl output. Node ids are
// assigned in sorted service-id order so the construction is
// deterministic regardless of worker scheduling.
func FromCrawl(res *crawler.Result) *Dataset {
	ids := make([]string, 0, len(res.Discovered))
	for id := range res.Discovered {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	d := &Dataset{
		IDs:      ids,
		Profiles: make([]profile.Profile, len(ids)),
		Crawled:  make([]bool, len(ids)),
	}
	d.buildIndex()
	for id, p := range res.Profiles {
		node := d.index[id]
		d.Profiles[node] = p
		d.Crawled[node] = true
	}

	b := graph.NewBuilder(len(ids), len(res.Edges))
	for _, e := range res.Edges {
		from, okFrom := d.index[e.From]
		to, okTo := d.index[e.To]
		if !okFrom || !okTo {
			continue // edge to an id outside the discovered set: impossible, but harmless
		}
		b.AddEdge(from, to)
	}
	if b.NumNodes() < len(ids) {
		// No edges touched the last ids (isolated seeds).
		b.EnsureNode(graph.NodeID(len(ids) - 1))
	}
	d.Graph = b.Build()
	return d
}

// FromUniverse builds a ground-truth dataset directly from a synthetic
// universe, bypassing HTTP. This is the fast path used by benchmarks and
// by cmd/gplusgen for large-scale runs.
func FromUniverse(u *synth.Universe) *Dataset {
	d := &Dataset{
		Graph:    u.Graph,
		Profiles: u.Profiles,
		IDs:      u.IDs,
		Crawled:  make([]bool, u.NumUsers()),
	}
	for i := range d.Crawled {
		d.Crawled[i] = true
	}
	d.buildIndex()
	return d
}
