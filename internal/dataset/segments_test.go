package dataset

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"gplus/internal/crawler"
	"gplus/internal/gplusd"
	"gplus/internal/graph"
	"gplus/internal/synth"
)

func TestSaveV2LoadRoundTrip(t *testing.T) {
	_, res := fixtures(t)
	d := FromCrawl(res)
	dir := filepath.Join(t.TempDir(), "ds")
	if err := d.SaveV2(dir); err != nil {
		t.Fatalf("SaveV2: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, graphV2File)); err != nil {
		t.Fatalf("graph.v2 missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, graphFile)); !os.IsNotExist(err) {
		t.Fatal("v1 graph.bin should not coexist with a fresh v2 save")
	}

	got, err := Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !reflect.DeepEqual(got.Graph, d.Graph) {
		t.Error("graph differs after v2 round trip")
	}
	if !reflect.DeepEqual(got.IDs, d.IDs) || !reflect.DeepEqual(got.Profiles, d.Profiles) {
		t.Error("profile columns differ after v2 round trip")
	}

	mapped, err := LoadWith(dir, Options{Mapped: true})
	if err != nil {
		t.Fatalf("LoadWith(Mapped): %v", err)
	}
	defer mapped.Close()
	if mapped.Graph != nil {
		t.Fatal("mapped load should not materialize the graph")
	}
	v := mapped.View()
	if v.NumNodes() != d.Graph.NumNodes() || v.NumEdges() != d.Graph.NumEdges() {
		t.Fatalf("mapped view %d/%d, want %d/%d",
			v.NumNodes(), v.NumEdges(), d.Graph.NumNodes(), d.Graph.NumEdges())
	}
	for u := 0; u < v.NumNodes(); u++ {
		if !reflect.DeepEqual(v.Out(graph.NodeID(u)), d.Graph.Out(graph.NodeID(u))) &&
			!(len(v.Out(graph.NodeID(u))) == 0 && len(d.Graph.Out(graph.NodeID(u))) == 0) {
			t.Fatalf("node %d: mapped out row differs", u)
		}
	}
}

// TestSaveV1OverwritesV2 pins the no-two-graphs invariant in the other
// direction: a v1 save over a v2 dataset removes graph.v2.
func TestSaveV1OverwritesV2(t *testing.T) {
	_, res := fixtures(t)
	d := FromCrawl(res)
	dir := filepath.Join(t.TempDir(), "ds")
	if err := d.SaveV2(dir); err != nil {
		t.Fatal(err)
	}
	if err := d.Save(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, graphV2File)); !os.IsNotExist(err) {
		t.Fatal("stale graph.v2 left behind by a v1 save")
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Graph, d.Graph) {
		t.Error("graph differs after v1-over-v2 save")
	}
}

// TestSegmentCrawlMatchesFromCrawl is the out-of-core crawl's
// end-to-end contract: streaming edges through a SegmentSink during a
// live crawl and compacting must yield the exact dataset the in-RAM
// FromCrawl path builds from the same service.
func TestSegmentCrawlMatchesFromCrawl(t *testing.T) {
	cfg := synth.DefaultConfig(800)
	cfg.Seed = 47
	u, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(gplusd.New(u, gplusd.Options{}))
	defer ts.Close()
	seed := u.IDs[graph.TopByInDegree(u.Graph, 1, 1)[0]]
	base := crawler.Config{
		BaseURL: ts.URL,
		Seeds:   []string{seed},
		Workers: 4,
		FetchIn: true, FetchOut: true,
	}

	plainRes, err := crawler.Crawl(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	want := FromCrawl(plainRes)

	segDir := filepath.Join(t.TempDir(), "segs")
	sink, err := NewSegmentSink(segDir, 1000, nil) // small buffer: several segments
	if err != nil {
		t.Fatal(err)
	}
	sinkCfg := base
	sinkCfg.EdgeSink = sink
	sinkRes, err := crawler.Crawl(context.Background(), sinkCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sinkRes.Edges) != 0 {
		t.Fatalf("sink crawl accumulated %d edges in RAM", len(sinkRes.Edges))
	}
	if sinkRes.Stats.EdgesObserved != plainRes.Stats.EdgesObserved {
		t.Fatalf("sink crawl observed %d edges, plain crawl %d",
			sinkRes.Stats.EdgesObserved, plainRes.Stats.EdgesObserved)
	}

	dir := filepath.Join(t.TempDir(), "ds")
	got, err := FromCrawlSegments(sinkRes, sink, dir, nil)
	if err != nil {
		t.Fatalf("FromCrawlSegments: %v", err)
	}
	defer got.Close()
	if !reflect.DeepEqual(got.IDs, want.IDs) {
		t.Fatal("id roster differs between sink and in-RAM paths")
	}
	if !reflect.DeepEqual(got.Profiles, want.Profiles) || !reflect.DeepEqual(got.Crawled, want.Crawled) {
		t.Fatal("profile columns differ between sink and in-RAM paths")
	}
	mat, err := got.View().(interface {
		Materialize() (*graph.Graph, error)
	}).Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mat, want.Graph) {
		t.Fatal("compacted graph differs from the in-RAM crawl graph")
	}

	// The directory FromCrawlSegments wrote is a complete dataset.
	reloaded, err := LoadWith(dir, Options{Mapped: true})
	if err != nil {
		t.Fatalf("reloading segment-built dataset: %v", err)
	}
	defer reloaded.Close()
	if reloaded.NumUsers() != want.NumUsers() || reloaded.View().NumEdges() != want.Graph.NumEdges() {
		t.Fatal("reloaded dataset lost users or edges")
	}
}

func TestSegmentSinkRefusesNonEmptyDir(t *testing.T) {
	dir := t.TempDir()
	sink, err := NewSegmentSink(dir, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.ObserveEdge("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := sink.w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewSegmentSink(dir, 10, nil); err == nil {
		t.Fatal("sink accepted a dir with stale segments (their interning table is gone)")
	}
}
