package stats_test

import (
	"fmt"

	"gplus/internal/stats"
)

func ExampleCCDF() {
	pts := stats.CCDF([]float64{1, 2, 2, 4})
	for _, p := range pts {
		fmt.Printf("P(X >= %g) = %.2f\n", p.X, p.Y)
	}
	// Output:
	// P(X >= 1) = 1.00
	// P(X >= 2) = 0.75
	// P(X >= 4) = 0.25
}

func ExampleFitPowerLawCCDF() {
	// A perfect alpha = 1 tail.
	pts := []stats.Point{{X: 1, Y: 1}, {X: 10, Y: 0.1}, {X: 100, Y: 0.01}}
	fit, _ := stats.FitPowerLawCCDF(pts, 0)
	fmt.Printf("alpha = %.1f, R2 = %.2f\n", fit.Alpha, fit.R2)
	// Output:
	// alpha = 1.0, R2 = 1.00
}

func ExampleJaccard() {
	us := []string{"IT", "Mu", "IT", "Bu"}
	ca := []string{"IT", "Mu", "Co", "Bu"}
	fmt.Printf("%.2f\n", stats.Jaccard(us, ca))
	// Output:
	// 0.60
}

func ExampleSpearman() {
	gdp := []float64{3700, 11900, 36100, 48100}
	ipr := []float64{0.10, 0.40, 0.84, 0.78}
	rho, _ := stats.Spearman(gdp, ipr)
	fmt.Printf("rho = %.1f\n", rho)
	// Output:
	// rho = 0.8
}
