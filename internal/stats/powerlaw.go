package stats

import (
	"errors"
	"math"
)

// LinearFit is the result of an ordinary-least-squares line fit.
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64
	N         int
}

// LinearRegression fits y = Slope*x + Intercept by least squares and
// reports the coefficient of determination R^2. It requires at least two
// points with distinct x values.
func LinearRegression(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, errors.New("stats: x and y lengths differ")
	}
	n := len(xs)
	if n < 2 {
		return LinearFit{}, errors.New("stats: need at least two points")
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, errors.New("stats: all x values identical")
	}
	slope := sxy / sxx
	fit := LinearFit{
		Slope:     slope,
		Intercept: my - slope*mx,
		N:         n,
	}
	if syy == 0 {
		fit.R2 = 1 // a horizontal line fits perfectly
	} else {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	}
	return fit, nil
}

// PowerLawFit describes a fitted CCDF of the form P(X >= x) = C * x^-Alpha.
type PowerLawFit struct {
	// Alpha is the CCDF exponent; the paper reports 1.3 for in-degree and
	// 1.2 for out-degree.
	Alpha float64
	// C is the multiplicative constant.
	C float64
	// R2 is the goodness of fit of the log-log regression; the paper
	// reports 0.99.
	R2 float64
	// Points is how many distinct CCDF points entered the fit.
	Points int
}

// FitPowerLawCCDF estimates a power-law exponent by simple linear
// regression in log-log space over the CCDF points, the method of §3.3.1.
// Points with X < xmin are excluded (pass xmin <= 0 to keep everything
// positive). Zero-valued samples never enter the fit since log is
// undefined there.
func FitPowerLawCCDF(ccdf []Point, xmin float64) (PowerLawFit, error) {
	var xs, ys []float64
	for _, p := range ccdf {
		if p.X <= 0 || p.Y <= 0 || p.X < xmin {
			continue
		}
		xs = append(xs, math.Log(p.X))
		ys = append(ys, math.Log(p.Y))
	}
	lf, err := LinearRegression(xs, ys)
	if err != nil {
		return PowerLawFit{}, err
	}
	return PowerLawFit{
		Alpha:  -lf.Slope,
		C:      math.Exp(lf.Intercept),
		R2:     lf.R2,
		Points: lf.N,
	}, nil
}

// FitDegreeDistribution is a convenience that computes the CCDF of the
// degrees and fits a power law with xmin = 1.
func FitDegreeDistribution(degrees []int) (PowerLawFit, error) {
	return FitPowerLawCCDF(CCDFInts(degrees), 1)
}

// FitPowerLawMLE estimates the CCDF tail exponent by the Hill / maximum
// likelihood estimator of Clauset, Shalizi & Newman over samples >= xmin
// (continuous approximation):
//
//	alpha_pdf = 1 + n / Σ ln(x_i / xmin),   alpha_ccdf = alpha_pdf - 1.
//
// The paper fits by log-log regression (§3.3.1), which the literature
// considers biased; this estimator is provided as the methodological
// cross-check and returns the CCDF exponent directly comparable to the
// paper's alpha. StdErr is the asymptotic standard error
// (alpha_pdf-1)/sqrt(n).
func FitPowerLawMLE(samples []float64, xmin float64) (alpha, stdErr float64, err error) {
	if xmin <= 0 {
		return 0, 0, errors.New("stats: xmin must be positive")
	}
	var (
		n      int
		logSum float64
	)
	for _, x := range samples {
		if x >= xmin {
			n++
			logSum += math.Log(x / xmin)
		}
	}
	if n < 2 {
		return 0, 0, errors.New("stats: too few samples above xmin")
	}
	if logSum == 0 {
		return 0, 0, errors.New("stats: all samples equal xmin")
	}
	alphaPDF := 1 + float64(n)/logSum
	alpha = alphaPDF - 1
	stdErr = alpha / math.Sqrt(float64(n))
	return alpha, stdErr, nil
}

// FitDegreesMLE applies FitPowerLawMLE to integer degrees with the +0.5
// continuity correction recommended for discrete data.
func FitDegreesMLE(degrees []int, xmin int) (alpha, stdErr float64, err error) {
	vals := make([]float64, 0, len(degrees))
	for _, d := range degrees {
		if d >= xmin {
			vals = append(vals, float64(d)+0.5)
		}
	}
	return FitPowerLawMLE(vals, float64(xmin)-0.5)
}
