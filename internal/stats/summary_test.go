package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Errorf("N=%d Mean=%v, want 8 and 5", s.N, s.Mean)
	}
	if s.Stddev != 2 {
		t.Errorf("Stddev = %v, want 2 (population form)", s.Stddev)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min=%v Max=%v", s.Min, s.Max)
	}
	if math.Abs(s.Median-4.5) > 1e-12 {
		t.Errorf("Median = %v, want 4.5", s.Median)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestQuantile(t *testing.T) {
	samples := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(samples, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile of empty should be NaN")
	}
}

func TestMode(t *testing.T) {
	if m, ok := Mode([]int{1, 2, 2, 3}); !ok || m != 2 {
		t.Errorf("Mode = %d,%v want 2,true", m, ok)
	}
	// Tie between 1 and 2 resolves to the smaller value.
	if m, _ := Mode([]int{2, 1, 2, 1}); m != 1 {
		t.Errorf("tie Mode = %d, want 1", m)
	}
	if _, ok := Mode(nil); ok {
		t.Error("Mode(nil) should report !ok")
	}
}

func TestJaccard(t *testing.T) {
	a := []string{"IT", "Mu", "IT"}
	b := []string{"IT", "IT", "Bu"}
	// multiset: inter = {IT:2} = 2, union = {IT:2, Mu:1, Bu:1} = 4.
	if got := Jaccard(a, b); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Jaccard = %v, want 0.5", got)
	}
	if got := Jaccard(a, a); got != 1 {
		t.Errorf("Jaccard(a,a) = %v, want 1", got)
	}
	if got := Jaccard(nil, nil); got != 1 {
		t.Errorf("Jaccard(nil,nil) = %v, want 1", got)
	}
	if got := Jaccard(a, nil); got != 0 {
		t.Errorf("Jaccard(a,nil) = %v, want 0", got)
	}
}

func TestJaccardPropertySymmetricBounded(t *testing.T) {
	f := func(a, b []string) bool {
		j1, j2 := Jaccard(a, b), Jaccard(b, a)
		return j1 == j2 && j1 >= 0 && j1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
