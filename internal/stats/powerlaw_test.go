package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestLinearRegressionExactLine(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 2x + 1
	fit, err := LinearRegression(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2) > 1e-12 || math.Abs(fit.Intercept-1) > 1e-12 {
		t.Errorf("fit = %+v, want slope 2 intercept 1", fit)
	}
	if fit.R2 != 1 {
		t.Errorf("R2 = %v, want 1", fit.R2)
	}
}

func TestLinearRegressionErrors(t *testing.T) {
	if _, err := LinearRegression([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := LinearRegression([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := LinearRegression([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Error("vertical line accepted")
	}
}

func TestLinearRegressionHorizontal(t *testing.T) {
	fit, err := LinearRegression([]float64{1, 2, 3}, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if fit.Slope != 0 || fit.R2 != 1 {
		t.Errorf("horizontal fit = %+v", fit)
	}
}

func TestFitPowerLawRecoverExponent(t *testing.T) {
	// Sample a bounded Pareto with alpha = 1.3 and check the log-log
	// regression recovers it within tolerance.
	rng := rand.New(rand.NewPCG(42, 43))
	const alpha = 1.3
	samples := make([]int, 200_000)
	for i := range samples {
		samples[i] = int(BoundedPareto(rng, alpha, 1, 1e7))
	}
	fit, err := FitDegreeDistribution(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Alpha-alpha) > 0.1 {
		t.Errorf("alpha = %v, want ~%v", fit.Alpha, alpha)
	}
	if fit.R2 < 0.97 {
		t.Errorf("R2 = %v, want >= 0.97", fit.R2)
	}
}

func TestFitPowerLawSkipsNonPositive(t *testing.T) {
	pts := []Point{{0, 1}, {-1, 0.5}, {1, 1}, {2, 0.25}, {4, 0.0625}}
	fit, err := FitPowerLawCCDF(pts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Points != 3 {
		t.Errorf("Points = %d, want 3 (non-positive X excluded)", fit.Points)
	}
	if math.Abs(fit.Alpha-2) > 1e-9 {
		t.Errorf("alpha = %v, want 2", fit.Alpha)
	}
}

func TestFitPowerLawXmin(t *testing.T) {
	// Perfect alpha=1 tail from x=10 upward, noise below.
	pts := []Point{{1, 1}, {2, 1}, {10, 0.1}, {100, 0.01}, {1000, 0.001}}
	fit, err := FitPowerLawCCDF(pts, 10)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Points != 3 {
		t.Fatalf("Points = %d, want 3", fit.Points)
	}
	if math.Abs(fit.Alpha-1) > 1e-9 || fit.R2 < 0.999 {
		t.Errorf("fit = %+v, want alpha 1 R2 ~1", fit)
	}
}

func TestFitPowerLawTooFewPoints(t *testing.T) {
	if _, err := FitPowerLawCCDF([]Point{{1, 1}}, 0); err == nil {
		t.Error("single-point fit accepted")
	}
}

func TestFitPowerLawMLERecoverExponent(t *testing.T) {
	rng := rand.New(rand.NewPCG(77, 78))
	const alpha = 1.3 // CCDF exponent
	samples := make([]float64, 100_000)
	for i := range samples {
		samples[i] = BoundedPareto(rng, alpha, 1, 1e9)
	}
	got, stderr, err := FitPowerLawMLE(samples, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-alpha) > 0.05 {
		t.Errorf("MLE alpha = %v, want ~%v", got, alpha)
	}
	if stderr <= 0 || stderr > 0.05 {
		t.Errorf("stderr = %v", stderr)
	}
}

func TestFitPowerLawMLEErrors(t *testing.T) {
	if _, _, err := FitPowerLawMLE([]float64{1, 2, 3}, 0); err == nil {
		t.Error("xmin=0 accepted")
	}
	if _, _, err := FitPowerLawMLE([]float64{5}, 1); err == nil {
		t.Error("single sample accepted")
	}
	if _, _, err := FitPowerLawMLE([]float64{2, 2, 2}, 2); err == nil {
		t.Error("degenerate samples accepted")
	}
	if _, _, err := FitPowerLawMLE([]float64{0.1, 0.2}, 1); err == nil {
		t.Error("samples below xmin accepted")
	}
}

func TestFitDegreesMLE(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	const alpha = 1.2
	degrees := make([]int, 200_000)
	for i := range degrees {
		degrees[i] = int(BoundedPareto(rng, alpha, 1, 1e8))
	}
	// The continuity correction is only reliable for xmin of several
	// units; xmin=10 matches the cutoff the study uses.
	got, _, err := FitDegreesMLE(degrees, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-alpha) > 0.1 {
		t.Errorf("discrete MLE alpha = %v, want ~%v", got, alpha)
	}
}
