package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestCCDFBasic(t *testing.T) {
	pts := CCDF([]float64{1, 2, 2, 3})
	want := []Point{{1, 1.0}, {2, 0.75}, {3, 0.25}}
	if len(pts) != len(want) {
		t.Fatalf("got %v, want %v", pts, want)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Errorf("pts[%d] = %v, want %v", i, pts[i], want[i])
		}
	}
}

func TestCCDFEmpty(t *testing.T) {
	if pts := CCDF(nil); pts != nil {
		t.Fatalf("CCDF(nil) = %v", pts)
	}
	if pts := CDF(nil); pts != nil {
		t.Fatalf("CDF(nil) = %v", pts)
	}
}

func TestCDFBasic(t *testing.T) {
	pts := CDF([]float64{1, 2, 2, 3})
	want := []Point{{1, 0.25}, {2, 0.75}, {3, 1.0}}
	for i := range want {
		if pts[i] != want[i] {
			t.Errorf("pts[%d] = %v, want %v", i, pts[i], want[i])
		}
	}
}

func TestCCDFInts(t *testing.T) {
	pts := CCDFInts([]int{0, 5, 5, 10})
	if pts[0] != (Point{0, 1.0}) {
		t.Errorf("first point %v", pts[0])
	}
	if pts[len(pts)-1] != (Point{10, 0.25}) {
		t.Errorf("last point %v", pts[len(pts)-1])
	}
}

func TestCCDFIntsMatchesCCDF(t *testing.T) {
	// Both entry points share one sort+scan path; on equivalent inputs
	// they must emit identical curves, without touching the input.
	rng := rand.New(rand.NewPCG(11, 12))
	ints := make([]int, 200)
	floats := make([]float64, len(ints))
	for i := range ints {
		ints[i] = rng.IntN(20)
		floats[i] = float64(ints[i])
	}
	orig := append([]float64(nil), floats...)
	a, b := CCDFInts(ints), CCDF(floats)
	if len(a) != len(b) {
		t.Fatalf("CCDFInts emitted %d points, CCDF %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("point %d: CCDFInts %v vs CCDF %v", i, a[i], b[i])
		}
	}
	for i := range floats {
		if floats[i] != orig[i] {
			t.Fatal("CCDF modified its input slice")
		}
	}
}

func TestCCDFAtCDFAt(t *testing.T) {
	s := []float64{1, 2, 3, 4}
	if got := CCDFAt(s, 3); got != 0.5 {
		t.Errorf("CCDFAt(3) = %v, want 0.5", got)
	}
	if got := CDFAt(s, 2); got != 0.5 {
		t.Errorf("CDFAt(2) = %v, want 0.5", got)
	}
	if got := CCDFAt(nil, 1); got != 0 {
		t.Errorf("CCDFAt(nil) = %v", got)
	}
}

func TestCCDFPropertyMonotoneAndBounded(t *testing.T) {
	f := func(raw []float64) bool {
		// Filter NaN which has no place in empirical curves.
		var samples []float64
		for _, v := range raw {
			if !math.IsNaN(v) {
				samples = append(samples, v)
			}
		}
		pts := CCDF(samples)
		prevX := math.Inf(-1)
		prevY := math.Inf(1)
		for _, p := range pts {
			if p.X <= prevX {
				return false // strictly increasing X
			}
			if p.Y > prevY || p.Y <= 0 || p.Y > 1 {
				return false // non-increasing Y in (0,1]
			}
			prevX, prevY = p.X, p.Y
		}
		// First point must be at the minimum with Y == 1.
		if len(pts) > 0 && pts[0].Y != 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCDFPropertyComplementsCCDF(t *testing.T) {
	// For any threshold x: P(X <= x) + P(X > x) == 1, i.e.
	// CDFAt(x) == 1 - CCDFAt(nextafter(x)).
	rng := rand.New(rand.NewPCG(7, 7))
	samples := make([]float64, 200)
	for i := range samples {
		samples[i] = math.Round(rng.Float64()*10) / 2
	}
	for _, x := range []float64{0, 1, 2.5, 5, 9} {
		lhs := CDFAt(samples, x)
		rhs := 1 - CCDFAt(samples, math.Nextafter(x, math.Inf(1)))
		if math.Abs(lhs-rhs) > 1e-12 {
			t.Errorf("x=%v: CDF %v vs 1-CCDF %v", x, lhs, rhs)
		}
	}
}

func TestKSDistance(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if d := KSDistance(a, a); d != 0 {
		t.Errorf("KS(a,a) = %v, want 0", d)
	}
	b := []float64{101, 102, 103}
	if d := KSDistance(a, b); d != 1 {
		t.Errorf("KS of disjoint supports = %v, want 1", d)
	}
	if d := KSDistance(nil, a); d != 1 {
		t.Errorf("KS with empty = %v, want 1", d)
	}
}

func TestKSDistancePropertySymmetricBounded(t *testing.T) {
	f := func(a, b []float64) bool {
		var ca, cb []float64
		for _, v := range a {
			if !math.IsNaN(v) {
				ca = append(ca, v)
			}
		}
		for _, v := range b {
			if !math.IsNaN(v) {
				cb = append(cb, v)
			}
		}
		d1, d2 := KSDistance(ca, cb), KSDistance(cb, ca)
		return math.Abs(d1-d2) < 1e-12 && d1 >= 0 && d1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
