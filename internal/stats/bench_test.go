package stats

import (
	"math/rand/v2"
	"testing"
)

func benchSamples(n int) []float64 {
	rng := rand.New(rand.NewPCG(1, 2))
	out := make([]float64, n)
	for i := range out {
		out[i] = BoundedPareto(rng, 1.3, 1, 1e6)
	}
	return out
}

func BenchmarkCCDF(b *testing.B) {
	samples := benchSamples(100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = CCDF(samples)
	}
}

func BenchmarkFitPowerLawCCDF(b *testing.B) {
	pts := CCDF(benchSamples(100_000))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitPowerLawCCDF(pts, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitPowerLawMLE(b *testing.B) {
	samples := benchSamples(100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := FitPowerLawMLE(samples, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKSDistance(b *testing.B) {
	a := benchSamples(50_000)
	c := benchSamples(50_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = KSDistance(a, c)
	}
}

func BenchmarkWeightedChooser(b *testing.B) {
	weights := benchSamples(100_000)
	ch := NewWeightedChooser(weights)
	rng := rand.New(rand.NewPCG(3, 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ch.Choose(rng)
	}
}

func BenchmarkSpearman(b *testing.B) {
	xs := benchSamples(10_000)
	ys := benchSamples(10_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Spearman(xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}
