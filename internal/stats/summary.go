package stats

import (
	"math"
	"sort"
)

// Summary holds the descriptive statistics used across the study's tables.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes descriptive statistics of the samples. The standard
// deviation is the population form (divide by N), matching the error bars
// of Figure 9(b).
func Summarize(samples []float64) Summary {
	n := len(samples)
	if n == 0 {
		return Summary{}
	}
	s := Summary{N: n, Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, v := range samples {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(n)
	var ss float64
	for _, v := range samples {
		d := v - s.Mean
		ss += d * d
	}
	s.Stddev = math.Sqrt(ss / float64(n))
	s.Median = Quantile(samples, 0.5)
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) of the samples using
// linear interpolation between closest ranks. The input is not modified.
func Quantile(samples []float64, q float64) float64 {
	n := len(samples)
	if n == 0 {
		return math.NaN()
	}
	sorted := sortedCopy(samples)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mode returns the most frequent value among integer samples, breaking
// ties toward the smaller value. ok is false for empty input.
func Mode(samples []int) (mode int, ok bool) {
	if len(samples) == 0 {
		return 0, false
	}
	counts := make(map[int]int, 64)
	for _, v := range samples {
		counts[v]++
	}
	keys := make([]int, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	best, bestCount := keys[0], counts[keys[0]]
	for _, k := range keys[1:] {
		if counts[k] > bestCount {
			best, bestCount = k, counts[k]
		}
	}
	return best, true
}

// Jaccard returns the Jaccard similarity |A ∩ B| / |A ∪ B| of two string
// multiset samples *treated as multisets*, the comparison used in Table 5
// to relate occupation-code lists across countries. Multiset intersection
// takes the per-element minimum multiplicity; union the maximum.
func Jaccard(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	ca := make(map[string]int, len(a))
	for _, s := range a {
		ca[s]++
	}
	cb := make(map[string]int, len(b))
	for _, s := range b {
		cb[s]++
	}
	var inter, union int
	for s, na := range ca {
		nb := cb[s]
		if nb < na {
			inter += nb
			union += na
		} else {
			inter += na
			union += nb
		}
	}
	for s, nb := range cb {
		if _, seen := ca[s]; !seen {
			union += nb
		}
	}
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}
