package stats

import (
	"math"
	"math/rand/v2"
)

// SampleWithoutReplacement returns k distinct integers drawn uniformly
// from [0, n). If k >= n it returns the full range in random order.
func SampleWithoutReplacement(n, k int, rng *rand.Rand) []int {
	if n <= 0 || k <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	// Floyd's algorithm: O(k) expected work and memory.
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := rng.IntN(j + 1)
		if _, dup := chosen[t]; dup {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// Reservoir maintains a uniform sample of up to k items from a stream of
// unknown length (Algorithm R). It backs the pair-sampling used by the
// path-mile analysis when the candidate set is too large to materialize.
type Reservoir[T any] struct {
	k     int
	seen  int64
	items []T
	rng   *rand.Rand
}

// NewReservoir returns a reservoir holding at most k items.
func NewReservoir[T any](k int, rng *rand.Rand) *Reservoir[T] {
	return &Reservoir[T]{k: k, items: make([]T, 0, k), rng: rng}
}

// Add offers one item to the reservoir.
func (r *Reservoir[T]) Add(item T) {
	r.seen++
	if len(r.items) < r.k {
		r.items = append(r.items, item)
		return
	}
	if j := r.rng.Int64N(r.seen); j < int64(r.k) {
		r.items[j] = item
	}
}

// Items returns the current sample. The slice is owned by the reservoir.
func (r *Reservoir[T]) Items() []T { return r.items }

// Seen returns how many items were offered in total.
func (r *Reservoir[T]) Seen() int64 { return r.seen }

// BoundedPareto draws from a discrete bounded Pareto distribution on
// [xmin, xmax] with tail exponent alpha (the CCDF decays like x^-alpha).
// It is the degree-sequence sampler behind the synthetic generator.
func BoundedPareto(rng *rand.Rand, alpha, xmin, xmax float64) float64 {
	if xmin <= 0 || xmax <= xmin || alpha <= 0 {
		return xmin
	}
	// Inverse-CDF sampling of a bounded Pareto.
	u := rng.Float64()
	la := math.Pow(xmin, alpha)
	ha := math.Pow(xmax, alpha)
	x := math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
	if x < xmin {
		x = xmin
	}
	if x > xmax {
		x = xmax
	}
	return x
}

// WeightedChooser samples indices in proportion to fixed non-negative
// weights in O(log n) per draw using an alias-free cumulative table.
type WeightedChooser struct {
	cum []float64
}

// NewWeightedChooser builds a chooser over the weights. Zero-weight
// entries are never chosen. It panics if all weights are zero or any is
// negative.
func NewWeightedChooser(weights []float64) *WeightedChooser {
	cum := make([]float64, len(weights))
	var total float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("stats: negative or NaN weight")
		}
		total += w
		cum[i] = total
	}
	if total == 0 {
		panic("stats: all weights zero")
	}
	return &WeightedChooser{cum: cum}
}

// Choose returns an index with probability proportional to its weight.
func (w *WeightedChooser) Choose(rng *rand.Rand) int {
	target := rng.Float64() * w.cum[len(w.cum)-1]
	lo, hi := 0, len(w.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if w.cum[mid] <= target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
