// Package stats provides the statistical machinery of the study:
// empirical CDF/CCDF curves, log-log power-law fitting, summary
// statistics, Jaccard similarity, and sampling helpers.
package stats

import (
	"math"
	"sort"
)

// Point is one (x, y) pair of an empirical curve.
type Point struct {
	X float64
	Y float64
}

// CCDF returns the complementary cumulative distribution function of the
// samples: for each distinct value x, the fraction of samples greater
// than or equal to x is plotted at x, i.e. P(X >= x). The input slice is
// not modified. Points come out sorted by X ascending.
func CCDF(samples []float64) []Point {
	return ccdfOwned(sortedCopy(samples))
}

// CCDFInts is CCDF for integer-valued samples such as node degrees. It
// converts once and runs through the same sort+scan path as CCDF.
func CCDFInts(samples []int) []Point {
	vals := make([]float64, len(samples))
	for i, s := range samples {
		vals[i] = float64(s)
	}
	return ccdfOwned(vals)
}

// ccdfOwned is the one shared CCDF path: it sorts vals in place (the
// caller must own the slice) and scans out one point per distinct value.
func ccdfOwned(vals []float64) []Point {
	sort.Float64s(vals)
	n := len(vals)
	if n == 0 {
		return nil
	}
	var pts []Point
	for i := 0; i < n; {
		j := i
		for j < n && vals[j] == vals[i] {
			j++
		}
		// P(X >= vals[i]) = (n - i) / n.
		pts = append(pts, Point{X: vals[i], Y: float64(n-i) / float64(n)})
		i = j
	}
	return pts
}

// CDF returns the empirical cumulative distribution function: for each
// distinct value x, P(X <= x). Points come out sorted by X ascending.
func CDF(samples []float64) []Point {
	sorted := sortedCopy(samples)
	n := len(sorted)
	if n == 0 {
		return nil
	}
	var pts []Point
	for i := 0; i < n; {
		j := i
		for j < n && sorted[j] == sorted[i] {
			j++
		}
		pts = append(pts, Point{X: sorted[i], Y: float64(j) / float64(n)})
		i = j
	}
	return pts
}

// CCDFAt evaluates P(X >= x) directly from samples.
func CCDFAt(samples []float64, x float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	count := 0
	for _, s := range samples {
		if s >= x {
			count++
		}
	}
	return float64(count) / float64(len(samples))
}

// CDFAt evaluates P(X <= x) directly from samples.
func CDFAt(samples []float64, x float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	count := 0
	for _, s := range samples {
		if s <= x {
			count++
		}
	}
	return float64(count) / float64(len(samples))
}

// KSDistance returns the Kolmogorov-Smirnov distance between the empirical
// CDFs of two sample sets: the maximum absolute difference between them.
// Tests use it to compare measured distributions against calibration
// targets.
func KSDistance(a, b []float64) float64 {
	sa, sb := sortedCopy(a), sortedCopy(b)
	if len(sa) == 0 || len(sb) == 0 {
		return 1
	}
	var (
		i, j int
		max  float64
	)
	for i < len(sa) && j < len(sb) {
		var x float64
		if sa[i] <= sb[j] {
			x = sa[i]
		} else {
			x = sb[j]
		}
		for i < len(sa) && sa[i] <= x {
			i++
		}
		for j < len(sb) && sb[j] <= x {
			j++
		}
		fa := float64(i) / float64(len(sa))
		fb := float64(j) / float64(len(sb))
		if d := math.Abs(fa - fb); d > max {
			max = d
		}
	}
	return max
}

func sortedCopy(samples []float64) []float64 {
	out := make([]float64, len(samples))
	copy(out, samples)
	sort.Float64s(out)
	return out
}
