package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestSampleWithoutReplacement(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	got := SampleWithoutReplacement(100, 10, rng)
	if len(got) != 10 {
		t.Fatalf("len = %d, want 10", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if v < 0 || v >= 100 {
			t.Fatalf("out of range: %d", v)
		}
		if seen[v] {
			t.Fatalf("duplicate: %d", v)
		}
		seen[v] = true
	}
	// k >= n returns a permutation of the full range.
	all := SampleWithoutReplacement(5, 99, rng)
	if len(all) != 5 {
		t.Fatalf("len = %d, want 5", len(all))
	}
	if SampleWithoutReplacement(0, 3, rng) != nil {
		t.Error("n=0 should return nil")
	}
}

func TestSampleWithoutReplacementPropertyDistinct(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed+1))
		n := 1 + rng.IntN(200)
		k := 1 + rng.IntN(n)
		got := SampleWithoutReplacement(n, k, rng)
		if len(got) != k {
			return false
		}
		seen := map[int]bool{}
		for _, v := range got {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestReservoirSmallStream(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	r := NewReservoir[int](10, rng)
	for i := 0; i < 5; i++ {
		r.Add(i)
	}
	if len(r.Items()) != 5 || r.Seen() != 5 {
		t.Fatalf("items=%v seen=%d", r.Items(), r.Seen())
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Each of 20 items should land in a k=5 reservoir with p = 1/4.
	rng := rand.New(rand.NewPCG(5, 6))
	counts := make([]int, 20)
	const trials = 4000
	for trial := 0; trial < trials; trial++ {
		r := NewReservoir[int](5, rng)
		for i := 0; i < 20; i++ {
			r.Add(i)
		}
		for _, v := range r.Items() {
			counts[v]++
		}
	}
	want := float64(trials) * 5 / 20
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.15 {
			t.Errorf("item %d chosen %d times, want ~%.0f", i, c, want)
		}
	}
}

func TestBoundedPareto(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	for i := 0; i < 10_000; i++ {
		x := BoundedPareto(rng, 1.2, 1, 5000)
		if x < 1 || x > 5000 {
			t.Fatalf("sample %v outside [1, 5000]", x)
		}
	}
	// Degenerate parameters fall back to xmin.
	if x := BoundedPareto(rng, 0, 1, 10); x != 1 {
		t.Errorf("alpha=0 sample = %v, want 1", x)
	}
	if x := BoundedPareto(rng, 1, 5, 5); x != 5 {
		t.Errorf("xmax==xmin sample = %v, want 5", x)
	}
}

func TestBoundedParetoTail(t *testing.T) {
	// With alpha=1 on [1,1000], P(X >= 10) ≈ 0.1 (slightly above due to
	// the bounded upper tail).
	rng := rand.New(rand.NewPCG(11, 12))
	const n = 100_000
	count := 0
	for i := 0; i < n; i++ {
		if BoundedPareto(rng, 1, 1, 1000) >= 10 {
			count++
		}
	}
	got := float64(count) / n
	if got < 0.08 || got > 0.13 {
		t.Errorf("P(X>=10) = %v, want ~0.1", got)
	}
}

func TestWeightedChooser(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 14))
	w := NewWeightedChooser([]float64{1, 0, 3})
	counts := make([]int, 3)
	const n = 40_000
	for i := 0; i < n; i++ {
		counts[w.Choose(rng)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight index chosen %d times", counts[1])
	}
	if math.Abs(float64(counts[0])/n-0.25) > 0.02 {
		t.Errorf("index 0 frequency %v, want ~0.25", float64(counts[0])/n)
	}
	if math.Abs(float64(counts[2])/n-0.75) > 0.02 {
		t.Errorf("index 2 frequency %v, want ~0.75", float64(counts[2])/n)
	}
}

func TestWeightedChooserPanics(t *testing.T) {
	for _, weights := range [][]float64{{0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("weights %v did not panic", weights)
				}
			}()
			NewWeightedChooser(weights)
		}()
	}
}
