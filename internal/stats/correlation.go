package stats

import (
	"errors"
	"math"
	"sort"
)

// Pearson returns the Pearson product-moment correlation coefficient of
// the paired samples. It errors on mismatched lengths, fewer than two
// pairs, or zero variance in either variable.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: x and y lengths differ")
	}
	n := len(xs)
	if n < 2 {
		return 0, errors.New("stats: need at least two pairs")
	}
	var mx, my float64
	for i := 0; i < n; i++ {
		mx += xs[i]
		my += ys[i]
	}
	mx /= float64(n)
	my /= float64(n)
	var sxx, syy, sxy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		syy += dy * dy
		sxy += dx * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: zero variance")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Spearman returns the Spearman rank correlation coefficient of the
// paired samples, computed as the Pearson correlation of the ranks (with
// ties assigned their average rank).
func Spearman(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: x and y lengths differ")
	}
	return Pearson(ranks(xs), ranks(ys))
}

// ranks assigns 1-based average ranks, handling ties.
func ranks(vals []float64) []float64 {
	n := len(vals)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return vals[idx[a]] < vals[idx[b]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j < n && vals[idx[j]] == vals[idx[i]] {
			j++
		}
		// Average rank for the tie group [i, j).
		avg := (float64(i+1) + float64(j)) / 2
		for k := i; k < j; k++ {
			out[idx[k]] = avg
		}
		i = j
	}
	return out
}
