package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Errorf("r = %v, want 1", r)
	}
	// Perfect negative.
	neg := []float64{10, 8, 6, 4, 2}
	r, err = Pearson(xs, neg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r+1) > 1e-12 {
		t.Errorf("r = %v, want -1", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1}); err == nil {
		t.Error("single pair accepted")
	}
	if _, err := Pearson([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Pearson([]float64{3, 3}, []float64{1, 2}); err == nil {
		t.Error("zero variance accepted")
	}
}

func TestPearsonIndependent(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	n := 20_000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		ys[i] = rng.NormFloat64()
	}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r) > 0.03 {
		t.Errorf("independent samples correlate at %v", r)
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Any strictly monotone transform gives rho = 1.
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = math.Exp(x) // nonlinear but monotone
	}
	rho, err := Spearman(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho-1) > 1e-12 {
		t.Errorf("rho = %v, want 1", rho)
	}
}

func TestSpearmanTies(t *testing.T) {
	xs := []float64{1, 2, 2, 3}
	ys := []float64{1, 2, 2, 3}
	rho, err := Spearman(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho-1) > 1e-12 {
		t.Errorf("rho with ties = %v, want 1", rho)
	}
}

func TestRanksAverageTies(t *testing.T) {
	got := ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", got, want)
		}
	}
}

func TestCorrelationPropertyBoundsAndSymmetry(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed^77))
		n := 3 + rng.IntN(40)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
			ys[i] = rng.NormFloat64()*5 + xs[i]*0.3
		}
		r1, err1 := Pearson(xs, ys)
		r2, err2 := Pearson(ys, xs)
		if err1 != nil || err2 != nil {
			return true // degenerate draw; nothing to check
		}
		if math.Abs(r1-r2) > 1e-9 || r1 < -1-1e-9 || r1 > 1+1e-9 {
			return false
		}
		rho, err := Spearman(xs, ys)
		return err == nil && rho >= -1-1e-9 && rho <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
