package resilience

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sync"
	"time"

	"gplus/internal/obs"
)

// Priority is an admission class. High-priority requests (cheap profile
// fetches, operational endpoints) are admitted ahead of low-priority
// ones (expensive circle pages) and may displace them from a full
// queue: under overload the expensive work sheds first.
type Priority int

const (
	PriorityHigh Priority = iota
	PriorityLow
	numPriorities
)

func (p Priority) String() string {
	if p == PriorityLow {
		return "low"
	}
	return "high"
}

// Shed reasons, used as metric labels and in ShedError messages.
const (
	ShedQueueFull = "queue_full" // wait queue at capacity
	ShedDeadline  = "deadline"   // propagated deadline would expire in queue
	ShedExpired   = "expired"    // deadline already passed on arrival or in queue
	ShedDisplaced = "displaced"  // pushed out of a full queue by higher priority
	ShedTimeout   = "timeout"    // waited MaxWait without getting a slot
	ShedCanceled  = "canceled"   // caller's context ended while queued
)

// ShedError reports an admission rejection. RetryAfter is the
// controller's estimate of when capacity will free up, suitable for a
// Retry-After response header.
type ShedError struct {
	Reason     string
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("resilience: admission shed (%s, retry in %v)", e.Reason, e.RetryAfter)
}

// RetryAfterHint exposes the capacity estimate to backoff machinery.
func (e *ShedError) RetryAfterHint() time.Duration { return e.RetryAfter }

// AdmissionOptions configures an Admission controller.
type AdmissionOptions struct {
	// MaxConcurrent bounds in-flight requests (default 32).
	MaxConcurrent int
	// MaxQueue bounds the total wait queue across priorities (default
	// 4×MaxConcurrent).
	MaxQueue int
	// MaxWait bounds how long a request may queue before being shed
	// (default 1s).
	MaxWait time.Duration
	// Scale, when set, is sampled on every admission decision and
	// multiplies MaxConcurrent: returning 0.25 during a brownout squeezes
	// the server to a quarter of its capacity. Values are clamped to
	// (0, 1]; the effective limit never drops below 1.
	Scale func() float64
}

func (o AdmissionOptions) maxConcurrent() int {
	if o.MaxConcurrent > 0 {
		return o.MaxConcurrent
	}
	return 32
}

func (o AdmissionOptions) maxQueue() int {
	if o.MaxQueue > 0 {
		return o.MaxQueue
	}
	return 4 * o.maxConcurrent()
}

func (o AdmissionOptions) maxWait() time.Duration {
	if o.MaxWait > 0 {
		return o.MaxWait
	}
	return time.Second
}

// admitWaiter is one queued request.
type admitWaiter struct {
	pri      Priority
	deadline time.Time // zero when the request carried none
	enqueued time.Time
	decided  bool
	ch       chan *ShedError // nil payload = admitted
}

// Admission is a bounded-concurrency admission controller with a
// bounded, priority-segregated LIFO wait queue and deadline-aware
// shedding. Newest waiters are served first (adaptive LIFO): under a
// burst the requests most likely to still have a live caller are the
// ones admitted, while stale waiters age out at the bottom and are shed.
// A nil *Admission admits everything.
type Admission struct {
	opts AdmissionOptions

	mu       sync.Mutex
	inflight int
	queues   [numPriorities][]*admitWaiter // LIFO stacks: admit from the top, displace from the bottom
	ewma     float64                       // smoothed service seconds
	admitted [numPriorities]int64
	shed     map[string]int64

	gInflight *obs.Gauge
	gQueued   *obs.Gauge
	gLimit    *obs.Gauge
	cAdmitted [numPriorities]*obs.Counter
	cShed     map[string]*obs.Counter
	hWait     *obs.Histogram
}

// NewAdmission builds an admission controller. When reg is non-nil it
// exports <prefix>_inflight, _queued, _limit gauges,
// _admitted_total{priority=...} and _shed_total{reason=...} counters,
// and a _wait_seconds histogram.
func NewAdmission(opts AdmissionOptions, reg *obs.Registry, prefix string) *Admission {
	a := &Admission{opts: opts, shed: make(map[string]int64)}
	if reg != nil {
		reg.Help(prefix+"_inflight", "Requests currently admitted and executing.")
		reg.Help(prefix+"_queued", "Requests waiting in the admission queue.")
		reg.Help(prefix+"_limit", "Current effective concurrency limit (after brownout scaling).")
		reg.Help(prefix+"_admitted_total", "Requests admitted, by priority class.")
		reg.Help(prefix+"_shed_total", "Requests shed by the admission controller, by reason.")
		reg.Help(prefix+"_wait_seconds", "Time spent queued before admission.")
		a.gInflight = reg.Gauge(prefix + "_inflight")
		a.gQueued = reg.Gauge(prefix + "_queued")
		a.gLimit = reg.Gauge(prefix + "_limit")
		for p := PriorityHigh; p < numPriorities; p++ {
			a.cAdmitted[p] = reg.Counter(prefix + `_admitted_total{priority="` + p.String() + `"}`)
		}
		a.cShed = make(map[string]*obs.Counter)
		for _, r := range []string{ShedQueueFull, ShedDeadline, ShedExpired, ShedDisplaced, ShedTimeout, ShedCanceled} {
			a.cShed[r] = reg.Counter(prefix + `_shed_total{reason="` + r + `"}`)
		}
		a.hWait = reg.Histogram(prefix+"_wait_seconds", obs.DefBuckets)
		a.gLimit.Set(int64(a.limitLocked()))
	}
	return a
}

// limitLocked is the effective concurrency limit after Scale; the
// caller holds a.mu (the Scale hook itself must not call back in).
func (a *Admission) limitLocked() int {
	limit := a.opts.maxConcurrent()
	if a.opts.Scale != nil {
		s := a.opts.Scale()
		if s < 1 {
			limit = int(math.Ceil(float64(limit) * math.Max(s, 0)))
			if limit < 1 {
				limit = 1
			}
		}
	}
	return limit
}

// queuedLocked is the total queue depth; the caller holds a.mu.
func (a *Admission) queuedLocked() int {
	n := 0
	for p := range a.queues {
		n += len(a.queues[p])
	}
	return n
}

// retryAfterLocked estimates when a shed request could succeed: the
// time for the queue ahead of it to drain through the current limit.
// The caller holds a.mu.
func (a *Admission) retryAfterLocked(limit int) time.Duration {
	service := a.ewma
	if service <= 0 {
		service = 0.010 // no samples yet: assume a fast service
	}
	est := service * float64(a.queuedLocked()+1) / float64(limit)
	d := time.Duration(est * float64(time.Second))
	if d < 50*time.Millisecond {
		d = 50 * time.Millisecond
	}
	return d
}

// Acquire asks to run one request at the given priority. deadline is
// the caller's propagated deadline (zero when none). On admission it
// returns a release callback the caller must invoke when the request
// finishes; on rejection it returns a *ShedError. A nil controller
// admits everything.
func (a *Admission) Acquire(ctx context.Context, pri Priority, deadline time.Time) (release func(), shed *ShedError) {
	if a == nil {
		return func() {}, nil
	}
	if pri < PriorityHigh || pri >= numPriorities {
		pri = PriorityLow
	}
	a.mu.Lock()
	limit := a.limitLocked()
	a.gLimit.Set(int64(limit))
	now := time.Now()

	if !deadline.IsZero() && !now.Before(deadline) {
		return nil, a.shedLocked(ShedExpired, limit)
	}
	if a.inflight < limit && a.queuedLocked() == 0 {
		a.admitLockedFast(pri, now, now)
		a.mu.Unlock()
		return a.releaseFunc(), nil
	}

	// Queue-side shedding before we commit to waiting.
	if !deadline.IsZero() {
		if wait := a.retryAfterLocked(limit); now.Add(wait).After(deadline) {
			return nil, a.shedLocked(ShedDeadline, limit)
		}
	}
	if a.queuedLocked() >= a.opts.maxQueue() {
		// A full queue sheds the oldest low-priority waiter to make room
		// for high-priority work; low-priority arrivals shed themselves.
		if pri == PriorityHigh && len(a.queues[PriorityLow]) > 0 {
			victim := a.queues[PriorityLow][0]
			a.queues[PriorityLow] = a.queues[PriorityLow][1:]
			victim.decided = true
			victim.ch <- &ShedError{Reason: ShedDisplaced, RetryAfter: a.retryAfterLocked(limit)}
			a.shed[ShedDisplaced]++
			a.cShed[ShedDisplaced].Inc()
		} else {
			return nil, a.shedLocked(ShedQueueFull, limit)
		}
	}

	w := &admitWaiter{pri: pri, deadline: deadline, enqueued: now, ch: make(chan *ShedError, 1)}
	a.queues[pri] = append(a.queues[pri], w)
	a.gQueued.Set(int64(a.queuedLocked()))
	a.mu.Unlock()

	maxWait := a.opts.maxWait()
	if !deadline.IsZero() {
		if until := deadline.Sub(now); until < maxWait {
			maxWait = until
		}
	}
	timer := time.NewTimer(maxWait)
	defer timer.Stop()

	select {
	case res := <-w.ch:
		if res != nil {
			return nil, res
		}
		return a.releaseFunc(), nil
	case <-timer.C:
		return a.abandonWait(w, ShedTimeout)
	case <-ctx.Done():
		return a.abandonWait(w, ShedCanceled)
	}
}

// abandonWait removes w from the queue after a timeout or cancel,
// handling the race where an admit decision landed first.
func (a *Admission) abandonWait(w *admitWaiter, reason string) (func(), *ShedError) {
	a.mu.Lock()
	if w.decided {
		a.mu.Unlock()
		// The decision beat us to it; honor whatever was delivered.
		if res := <-w.ch; res != nil {
			return nil, res
		}
		return a.releaseFunc(), nil
	}
	w.decided = true
	q := a.queues[w.pri]
	for i, cand := range q {
		if cand == w {
			a.queues[w.pri] = append(q[:i], q[i+1:]...)
			break
		}
	}
	a.gQueued.Set(int64(a.queuedLocked()))
	shed := a.shedLocked(reason, a.limitLocked())
	return nil, shed
}

// shedLocked records a rejection and unlocks; the caller holds a.mu.
func (a *Admission) shedLocked(reason string, limit int) *ShedError {
	e := &ShedError{Reason: reason, RetryAfter: a.retryAfterLocked(limit)}
	a.shed[reason]++
	if c := a.cShed[reason]; c != nil {
		c.Inc()
	}
	a.mu.Unlock()
	return e
}

// admitLockedFast admits a request without queueing; caller holds a.mu.
func (a *Admission) admitLockedFast(pri Priority, enqueued, now time.Time) {
	a.inflight++
	a.admitted[pri]++
	a.cAdmitted[pri].Inc()
	a.gInflight.Set(int64(a.inflight))
	a.hWait.Observe(now.Sub(enqueued).Seconds())
}

// releaseFunc builds the release callback for an admitted request;
// release feeds the service-time EWMA and hands the freed slot to the
// next eligible waiter.
func (a *Admission) releaseFunc() func() {
	var once sync.Once
	admittedAt := time.Now()
	return func() {
		once.Do(func() {
			a.mu.Lock()
			defer a.mu.Unlock()
			service := time.Since(admittedAt).Seconds()
			const alpha = 0.2
			if a.ewma == 0 {
				a.ewma = service
			} else {
				a.ewma += alpha * (service - a.ewma)
			}
			a.inflight--
			a.drainLocked()
			a.gInflight.Set(int64(a.inflight))
			a.gQueued.Set(int64(a.queuedLocked()))
		})
	}
}

// drainLocked hands free slots to waiters — newest first within a
// priority (LIFO), high priority before low — shedding queued waiters
// whose deadline has already expired. The caller holds a.mu.
func (a *Admission) drainLocked() {
	limit := a.limitLocked()
	a.gLimit.Set(int64(limit))
	now := time.Now()
	for a.inflight < limit {
		var w *admitWaiter
		for p := PriorityHigh; p < numPriorities; p++ {
			for n := len(a.queues[p]); n > 0; n = len(a.queues[p]) {
				cand := a.queues[p][n-1]
				a.queues[p] = a.queues[p][:n-1]
				if !cand.deadline.IsZero() && !now.Before(cand.deadline) {
					cand.decided = true
					cand.ch <- &ShedError{Reason: ShedExpired, RetryAfter: a.retryAfterLocked(limit)}
					a.shed[ShedExpired]++
					a.cShed[ShedExpired].Inc()
					continue
				}
				w = cand
				break
			}
			if w != nil {
				break
			}
		}
		if w == nil {
			return
		}
		w.decided = true
		a.inflight++
		a.admitted[w.pri]++
		a.cAdmitted[w.pri].Inc()
		a.hWait.Observe(now.Sub(w.enqueued).Seconds())
		w.ch <- nil
	}
}

// AdmissionReport is the /debug/admission JSON shape.
type AdmissionReport struct {
	Limit         int              `json:"limit"`
	MaxConcurrent int              `json:"max_concurrent"`
	MaxQueue      int              `json:"max_queue"`
	Inflight      int              `json:"inflight"`
	QueuedHigh    int              `json:"queued_high"`
	QueuedLow     int              `json:"queued_low"`
	EWMAServiceMS float64          `json:"ewma_service_ms"`
	Admitted      map[string]int64 `json:"admitted"`
	Shed          map[string]int64 `json:"shed"`
}

// Report snapshots the controller state for debugging. Nil-safe.
func (a *Admission) Report() AdmissionReport {
	if a == nil {
		return AdmissionReport{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	rep := AdmissionReport{
		Limit:         a.limitLocked(),
		MaxConcurrent: a.opts.maxConcurrent(),
		MaxQueue:      a.opts.maxQueue(),
		Inflight:      a.inflight,
		QueuedHigh:    len(a.queues[PriorityHigh]),
		QueuedLow:     len(a.queues[PriorityLow]),
		EWMAServiceMS: a.ewma * 1000,
		Admitted: map[string]int64{
			"high": a.admitted[PriorityHigh],
			"low":  a.admitted[PriorityLow],
		},
		Shed: make(map[string]int64, len(a.shed)),
	}
	for r, n := range a.shed {
		rep.Shed[r] = n
	}
	return rep
}

// ServeHTTP renders the controller state as indented JSON, for
// /debug/admission.
func (a *Admission) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	if a == nil {
		http.Error(w, "admission control disabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(a.Report())
}
