package resilience

import (
	"context"
	"sync"
	"time"

	"gplus/internal/obs"
)

// Feedback is the congestion-signal sink a client reports into: one
// RecordSuccess per completed request, one RecordOverload per 429/503/
// deadline-expiry signal. The crawler hands its AIMD gate to every
// worker's API client through this interface.
type Feedback interface {
	RecordSuccess()
	RecordOverload()
}

// AIMDOptions configures an AIMD gate.
type AIMDOptions struct {
	// Min is the floor the limit never drops below (default 1).
	Min int
	// Max is the ceiling and the starting limit (default 16). The
	// crawler sets this to its worker count.
	Max int
	// DecreaseFactor is the multiplicative cut applied on overload
	// (default 0.5).
	DecreaseFactor float64
	// Cooldown is the minimum spacing between cuts (default 200ms), so a
	// single burst of rejections — N workers all seeing the same squeeze —
	// counts as one congestion event, not N collapses to Min.
	Cooldown time.Duration
	// OnDecrease, when non-nil, runs after each multiplicative cut with
	// the new limit — outside the gate's lock, so it may call back into
	// the gate. The continuous profiler hooks this to capture the moment
	// the fleet collapses toward Min.
	OnDecrease func(limit int)
}

func (o AIMDOptions) minLimit() int {
	if o.Min > 0 {
		return o.Min
	}
	return 1
}

func (o AIMDOptions) maxLimit() int {
	if o.Max > 0 {
		return o.Max
	}
	return 16
}

func (o AIMDOptions) decreaseFactor() float64 {
	if o.DecreaseFactor > 0 && o.DecreaseFactor < 1 {
		return o.DecreaseFactor
	}
	return 0.5
}

func (o AIMDOptions) cooldown() time.Duration {
	if o.Cooldown > 0 {
		return o.Cooldown
	}
	return 200 * time.Millisecond
}

// AIMD is an additive-increase/multiplicative-decrease concurrency
// gate: the whole worker fleet shares one, so overload signals from any
// worker throttle everyone — the fleet backs off as one organism. The
// limit starts at Max, is cut by DecreaseFactor on overload (at most
// once per Cooldown), and creeps back up by one slot per limit-many
// successes, exactly like TCP's congestion window in congestion
// avoidance. A nil *AIMD gates nothing.
type AIMD struct {
	opts AIMDOptions

	mu        sync.Mutex
	cond      *sync.Cond
	limit     int
	active    int
	credits   int // successes accumulated toward the next +1
	lastCut   time.Time
	decreases int64

	gLimit     *obs.Gauge
	cDecreases *obs.Counter
}

// NewAIMD builds a gate starting wide open at Max. When reg is non-nil
// it exports <prefix>_aimd_limit and <prefix>_aimd_decreases_total.
func NewAIMD(opts AIMDOptions, reg *obs.Registry, prefix string) *AIMD {
	g := &AIMD{opts: opts, limit: opts.maxLimit()}
	g.cond = sync.NewCond(&g.mu)
	if reg != nil {
		reg.Help(prefix+"_aimd_limit", "Current AIMD concurrency limit shared by the worker fleet.")
		reg.Help(prefix+"_aimd_decreases_total", "Multiplicative decreases applied to the AIMD limit.")
		g.gLimit = reg.Gauge(prefix + "_aimd_limit")
		g.cDecreases = reg.Counter(prefix + "_aimd_decreases_total")
		g.gLimit.Set(int64(g.limit))
	}
	return g
}

// Acquire blocks until a concurrency slot is free or ctx ends,
// reporting whether a slot was taken. Nil-safe (always true).
func (g *AIMD) Acquire(ctx context.Context) bool {
	if g == nil {
		return true
	}
	// Wake all waiters when ctx ends so none are stranded in Wait.
	stop := context.AfterFunc(ctx, func() {
		g.mu.Lock()
		g.cond.Broadcast()
		g.mu.Unlock()
	})
	defer stop()
	g.mu.Lock()
	defer g.mu.Unlock()
	for g.active >= g.limit {
		if ctx.Err() != nil {
			return false
		}
		g.cond.Wait()
	}
	if ctx.Err() != nil {
		return false
	}
	g.active++
	return true
}

// Release returns a slot taken by Acquire. Nil-safe.
func (g *AIMD) Release() {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.active--
	g.cond.Broadcast()
	g.mu.Unlock()
}

// RecordSuccess credits the additive increase: limit-many successes at
// the current limit buy one extra slot, up to Max. Nil-safe.
func (g *AIMD) RecordSuccess() {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.credits++
	if g.credits >= g.limit && g.limit < g.opts.maxLimit() {
		g.credits = 0
		g.limit++
		g.gLimit.Set(int64(g.limit))
		g.cond.Broadcast()
	}
	g.mu.Unlock()
}

// RecordOverload applies the multiplicative decrease, rate-limited by
// Cooldown so one burst of rejections is one congestion event. Nil-safe.
func (g *AIMD) RecordOverload() {
	if g == nil {
		return
	}
	g.mu.Lock()
	cut, limit := false, 0
	now := time.Now()
	if now.Sub(g.lastCut) >= g.opts.cooldown() {
		g.lastCut = now
		g.credits = 0
		g.limit = int(float64(g.limit) * g.opts.decreaseFactor())
		if g.limit < g.opts.minLimit() {
			g.limit = g.opts.minLimit()
		}
		g.decreases++
		g.gLimit.Set(int64(g.limit))
		g.cDecreases.Inc()
		cut, limit = true, g.limit
	}
	g.mu.Unlock()
	if cut && g.opts.OnDecrease != nil {
		g.opts.OnDecrease(limit)
	}
}

// Limit reports the current concurrency limit (0 for nil).
func (g *AIMD) Limit() int {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.limit
}

// Decreases reports how many multiplicative cuts have been applied.
func (g *AIMD) Decreases() int64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.decreases
}
