// Package resilience is the repo's shared overload-control layer: the
// pieces every serving stack needs between "retries exist" and "retries
// are safe". The paper's crawl of 27.5M profiles survived a flaky,
// throttling service for 45 days; that only works when client retries
// are budgeted (a browning-out service must not be hit *harder* exactly
// when it is weakest), failing endpoints are circuit-broken instead of
// probed at full rate, abandoned work is rejected before it is served
// (deadline propagation + admission control), and the crawler fleet
// backs off as one organism (AIMD) instead of N independent retry
// loops.
//
// The package is dependency-free beyond internal/obs and shared by all
// three layers: gplusapi (retry budget, circuit breakers, deadline
// headers), gplusd (admission control, deadline parsing), and crawler
// (AIMD worker-concurrency adaptation).
package resilience

import (
	"errors"
	"sync"
	"time"

	"gplus/internal/obs"
)

// ErrRetryBudgetExhausted is returned (wrapped) when a retry was denied
// because the budget is out of tokens. It marks the failure as an
// overload condition: the request was abandoned to protect the service,
// not permanently failed by it.
var ErrRetryBudgetExhausted = errors.New("resilience: retry budget exhausted")

// BudgetOptions configures a RetryBudget. The zero value gives the
// defaults: at most ~10% of successful traffic may be retries, with a
// small floor so a quiet client can still probe.
type BudgetOptions struct {
	// Ratio is how many retry tokens each success deposits (default
	// 0.1): sustained, retries cannot exceed this fraction of the
	// success rate — a retry storm is impossible by construction.
	Ratio float64
	// MinPerSec trickles tokens in regardless of traffic (default 0.5),
	// so a client facing a total outage can still probe occasionally
	// instead of being locked out forever.
	MinPerSec float64
	// Burst caps banked tokens (default 10): a long quiet stretch must
	// not bank an arbitrarily large retry burst.
	Burst float64
}

func (o BudgetOptions) ratio() float64 {
	if o.Ratio > 0 {
		return o.Ratio
	}
	return 0.1
}

func (o BudgetOptions) minPerSec() float64 {
	if o.MinPerSec > 0 {
		return o.MinPerSec
	}
	return 0.5
}

func (o BudgetOptions) burst() float64 {
	if o.Burst > 0 {
		return o.Burst
	}
	return 10
}

// RetryBudget is a token bucket that makes retry storms structurally
// impossible: retries spend a token each, successes deposit Ratio
// tokens, and a slow MinPerSec trickle keeps a starved client probing.
// It is shared fleet-wide (all workers of a crawl draw from one budget)
// and safe for concurrent use. A nil *RetryBudget allows everything.
type RetryBudget struct {
	opts BudgetOptions

	mu     sync.Mutex
	tokens float64
	last   time.Time

	gTokens *obs.Gauge   // banked tokens, x1000
	cSpent  *obs.Counter // retries granted
	cDenied *obs.Counter // retries denied
}

// NewRetryBudget builds a budget starting with a full burst of tokens.
// When reg is non-nil the budget exports <prefix>_retry_budget_tokens_milli,
// <prefix>_retry_budget_spent_total, and <prefix>_retry_budget_denied_total.
func NewRetryBudget(opts BudgetOptions, reg *obs.Registry, prefix string) *RetryBudget {
	b := &RetryBudget{opts: opts, tokens: opts.burst(), last: time.Now()}
	if reg != nil {
		reg.Help(prefix+"_retry_budget_tokens_milli", "Retry tokens currently banked, x1000.")
		reg.Help(prefix+"_retry_budget_spent_total", "Retries granted by the retry budget.")
		reg.Help(prefix+"_retry_budget_denied_total", "Retries denied by an exhausted retry budget.")
		b.gTokens = reg.Gauge(prefix + "_retry_budget_tokens_milli")
		b.cSpent = reg.Counter(prefix + "_retry_budget_spent_total")
		b.cDenied = reg.Counter(prefix + "_retry_budget_denied_total")
		b.gTokens.Set(int64(b.tokens * 1000))
	}
	return b
}

// Deposit credits the budget for one success. Nil-safe.
func (b *RetryBudget) Deposit() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.refillLocked(time.Now())
	b.tokens = min(b.tokens+b.opts.ratio(), b.opts.burst())
	b.gTokens.Set(int64(b.tokens * 1000))
	b.mu.Unlock()
}

// TrySpend asks for one retry token, reporting whether the retry may
// proceed. A nil budget always grants.
func (b *RetryBudget) TrySpend() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(time.Now())
	if b.tokens < 1 {
		b.gTokens.Set(int64(b.tokens * 1000))
		b.cDenied.Inc()
		return false
	}
	b.tokens--
	b.gTokens.Set(int64(b.tokens * 1000))
	b.cSpent.Inc()
	return true
}

// Tokens reports the currently banked tokens (full burst for nil).
func (b *RetryBudget) Tokens() float64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(time.Now())
	return b.tokens
}

// refillLocked applies the MinPerSec trickle; the caller holds b.mu.
func (b *RetryBudget) refillLocked(now time.Time) {
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = min(b.tokens+dt*b.opts.minPerSec(), b.opts.burst())
	}
	b.last = now
}
