package resilience

import (
	"fmt"
	"sync"
	"time"

	"gplus/internal/obs"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed passes requests through, counting outcomes.
	BreakerClosed BreakerState = iota
	// BreakerOpen fails requests fast until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen lets exactly one single-flight probe through;
	// its outcome decides between Closed and Open.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// OpenError is returned by Allow while the breaker is open (or while a
// half-open probe is already in flight). RetryIn hints when the next
// probe slot opens, so backoff loops can sleep exactly that long.
type OpenError struct {
	Name    string
	State   BreakerState
	RetryIn time.Duration
}

func (e *OpenError) Error() string {
	return fmt.Sprintf("resilience: %s breaker %s (retry in %v)", e.Name, e.State, e.RetryIn)
}

// RetryAfterHint lets backoff machinery treat the breaker's cooldown as
// a Retry-After hint.
func (e *OpenError) RetryAfterHint() time.Duration { return e.RetryIn }

// BreakerOptions configures a Breaker; zero values give the defaults.
type BreakerOptions struct {
	// ConsecutiveFailures trips the breaker after this many failures in
	// a row (default 8).
	ConsecutiveFailures int
	// ErrorRatio trips the breaker when the failure fraction over the
	// sliding Window reaches it (default 0.5), once at least MinSamples
	// outcomes were observed (default 20).
	ErrorRatio float64
	MinSamples int
	// Window is the span of the error-ratio measurement (default 5s),
	// implemented as two rotating half-window buckets.
	Window time.Duration
	// Cooldown is how long an open breaker waits before letting a
	// half-open probe through (default 2s).
	Cooldown time.Duration
}

func (o BreakerOptions) consecutive() int {
	if o.ConsecutiveFailures > 0 {
		return o.ConsecutiveFailures
	}
	return 8
}

func (o BreakerOptions) errorRatio() float64 {
	if o.ErrorRatio > 0 {
		return o.ErrorRatio
	}
	return 0.5
}

func (o BreakerOptions) minSamples() int {
	if o.MinSamples > 0 {
		return o.MinSamples
	}
	return 20
}

func (o BreakerOptions) window() time.Duration {
	if o.Window > 0 {
		return o.Window
	}
	return 5 * time.Second
}

func (o BreakerOptions) cooldown() time.Duration {
	if o.Cooldown > 0 {
		return o.Cooldown
	}
	return 2 * time.Second
}

// bucket is one half-window of outcome counts.
type bucket struct{ good, bad int }

// Breaker is one endpoint's circuit breaker: closed → open on a
// consecutive-failure run or a windowed error ratio, half-open after the
// cooldown with a single-flight probe, closed again on probe success.
// Safe for concurrent use; a nil *Breaker always allows.
type Breaker struct {
	name string
	opts BreakerOptions

	mu          sync.Mutex
	state       BreakerState
	consecutive int       // consecutive failures while closed
	cur, prev   bucket    // rotating half-window outcome counts
	rotated     time.Time // when cur last became current
	openedAt    time.Time
	probing     bool // a half-open probe is in flight

	gState       *obs.Gauge
	cTransitions *obs.Counter
	cDenied      *obs.Counter
}

// NewBreaker builds a closed breaker. When reg is non-nil it exports
// <prefix>_breaker_state{name=...} (0 closed, 1 open, 2 half-open),
// <prefix>_breaker_transitions_total{name=...}, and
// <prefix>_breaker_denied_total{name=...}.
func NewBreaker(name string, opts BreakerOptions, reg *obs.Registry, prefix string) *Breaker {
	b := &Breaker{name: name, opts: opts, rotated: time.Now()}
	if reg != nil {
		reg.Help(prefix+"_breaker_state", "Circuit breaker state: 0 closed, 1 open, 2 half-open.")
		reg.Help(prefix+"_breaker_transitions_total", "Circuit breaker state transitions.")
		reg.Help(prefix+"_breaker_denied_total", "Requests denied fast by an open circuit breaker.")
		label := `{name="` + name + `"}`
		b.gState = reg.Gauge(prefix + "_breaker_state" + label)
		b.cTransitions = reg.Counter(prefix + "_breaker_transitions_total" + label)
		b.cDenied = reg.Counter(prefix + "_breaker_denied_total" + label)
	}
	return b
}

// Allow asks to issue one request. On success it returns a done
// callback the caller must invoke with the request's outcome; on denial
// it returns an *OpenError whose RetryIn hints when to try again. A nil
// breaker always allows with a no-op callback.
func (b *Breaker) Allow() (done func(success bool), err error) {
	if b == nil {
		return func(bool) {}, nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	b.rotateLocked(now)
	switch b.state {
	case BreakerOpen:
		if wait := b.openedAt.Add(b.opts.cooldown()).Sub(now); wait > 0 {
			b.cDenied.Inc()
			return nil, &OpenError{Name: b.name, State: BreakerOpen, RetryIn: wait}
		}
		b.setStateLocked(BreakerHalfOpen)
		fallthrough
	case BreakerHalfOpen:
		if b.probing {
			// Single-flight: one probe decides for everyone.
			b.cDenied.Inc()
			return nil, &OpenError{Name: b.name, State: BreakerHalfOpen, RetryIn: b.opts.cooldown() / 4}
		}
		b.probing = true
		return b.probeDone(), nil
	default:
		return b.closedDone(), nil
	}
}

// State reports the breaker's current position (closed for nil).
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// probeDone resolves a half-open probe; the caller holds b.mu.
func (b *Breaker) probeDone() func(bool) {
	var once sync.Once
	return func(success bool) {
		once.Do(func() {
			b.mu.Lock()
			defer b.mu.Unlock()
			b.probing = false
			if b.state != BreakerHalfOpen {
				return
			}
			if success {
				b.resetLocked()
				b.setStateLocked(BreakerClosed)
				return
			}
			b.openedAt = time.Now()
			b.setStateLocked(BreakerOpen)
		})
	}
}

// closedDone records a closed-state outcome; the caller holds b.mu.
func (b *Breaker) closedDone() func(bool) {
	var once sync.Once
	return func(success bool) {
		once.Do(func() {
			b.mu.Lock()
			defer b.mu.Unlock()
			now := time.Now()
			b.rotateLocked(now)
			if b.state != BreakerClosed {
				return // a concurrent outcome already tripped the breaker
			}
			if success {
				b.consecutive = 0
				b.cur.good++
				return
			}
			b.consecutive++
			b.cur.bad++
			good, bad := b.cur.good+b.prev.good, b.cur.bad+b.prev.bad
			ratioTrip := good+bad >= b.opts.minSamples() &&
				float64(bad)/float64(good+bad) >= b.opts.errorRatio()
			if b.consecutive >= b.opts.consecutive() || ratioTrip {
				b.openedAt = now
				b.setStateLocked(BreakerOpen)
			}
		})
	}
}

// rotateLocked advances the half-window buckets; the caller holds b.mu.
func (b *Breaker) rotateLocked(now time.Time) {
	half := b.opts.window() / 2
	for now.Sub(b.rotated) >= half {
		b.prev, b.cur = b.cur, bucket{}
		b.rotated = b.rotated.Add(half)
		if now.Sub(b.rotated) >= b.opts.window() {
			// Idle long enough that both buckets are stale.
			b.prev = bucket{}
			b.rotated = now
		}
	}
}

// resetLocked clears the outcome history; the caller holds b.mu.
func (b *Breaker) resetLocked() {
	b.consecutive = 0
	b.cur, b.prev = bucket{}, bucket{}
	b.rotated = time.Now()
}

// setStateLocked transitions the breaker; the caller holds b.mu.
func (b *Breaker) setStateLocked(s BreakerState) {
	if b.state == s {
		return
	}
	b.state = s
	b.gState.Set(int64(s))
	b.cTransitions.Inc()
}

// BreakerGroup is a lazily-populated set of breakers sharing one option
// set — one per endpoint, keyed by name. Safe for concurrent use; a nil
// group hands out nil (always-allow) breakers.
type BreakerGroup struct {
	opts   BreakerOptions
	reg    *obs.Registry
	prefix string

	mu  sync.Mutex
	set map[string]*Breaker
}

// NewBreakerGroup builds an empty group; breakers are created on first
// Get and export their series through reg (which may be nil).
func NewBreakerGroup(opts BreakerOptions, reg *obs.Registry, prefix string) *BreakerGroup {
	return &BreakerGroup{opts: opts, reg: reg, prefix: prefix, set: make(map[string]*Breaker)}
}

// Get returns the named breaker, creating it on first use. Nil-safe.
func (g *BreakerGroup) Get(name string) *Breaker {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	b := g.set[name]
	if b == nil {
		b = NewBreaker(name, g.opts, g.reg, g.prefix)
		g.set[name] = b
	}
	return b
}

// States snapshots every breaker's state, for debug reports.
func (g *BreakerGroup) States() map[string]BreakerState {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[string]BreakerState, len(g.set))
	for name, b := range g.set {
		out[name] = b.State()
	}
	return out
}
