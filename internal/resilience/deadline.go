package resilience

import (
	"context"
	"net/http"
	"strconv"
	"time"
)

// DeadlineHeader carries the caller's remaining budget for a request as
// an integer number of milliseconds. Sending a relative duration rather
// than an absolute timestamp keeps the contract immune to clock skew
// between crawler machines and the service.
const DeadlineHeader = "X-Gplus-Deadline"

// SetDeadlineHeader stamps req with the remaining budget of ctx, if ctx
// carries a deadline. Budgets are floored at 1ms so an almost-expired
// request still signals "about to abandon" rather than omitting the
// header.
func SetDeadlineHeader(ctx context.Context, req *http.Request) {
	d, ok := ctx.Deadline()
	if !ok {
		return
	}
	ms := time.Until(d).Milliseconds()
	if ms < 1 {
		ms = 1
	}
	req.Header.Set(DeadlineHeader, strconv.FormatInt(ms, 10))
}

// DeadlineFromHeader reads the propagated budget off an inbound request,
// returning the absolute deadline it implies. ok is false when the
// header is absent, malformed, or non-positive — a server must treat
// that as "no deadline", never as "already expired".
func DeadlineFromHeader(req *http.Request) (deadline time.Time, ok bool) {
	v := req.Header.Get(DeadlineHeader)
	if v == "" {
		return time.Time{}, false
	}
	ms, err := strconv.ParseInt(v, 10, 64)
	if err != nil || ms <= 0 {
		return time.Time{}, false
	}
	return time.Now().Add(time.Duration(ms) * time.Millisecond), true
}
