package resilience

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"gplus/internal/obs"
)

func TestRetryBudgetSpendAndRefill(t *testing.T) {
	b := NewRetryBudget(BudgetOptions{Ratio: 0.5, MinPerSec: 0.0001, Burst: 2}, nil, "t")
	if !b.TrySpend() || !b.TrySpend() {
		t.Fatal("burst tokens should grant the first two retries")
	}
	if b.TrySpend() {
		t.Fatal("third retry should be denied with an empty bucket")
	}
	// Two successes deposit 2×0.5 = 1 token.
	b.Deposit()
	b.Deposit()
	if !b.TrySpend() {
		t.Fatal("deposits should refill the bucket")
	}
	if b.TrySpend() {
		t.Fatal("bucket should be empty again")
	}
}

func TestRetryBudgetBurstCap(t *testing.T) {
	b := NewRetryBudget(BudgetOptions{Ratio: 1, Burst: 3}, nil, "t")
	for i := 0; i < 100; i++ {
		b.Deposit()
	}
	if got := b.Tokens(); got > 3 {
		t.Fatalf("tokens = %v, want ≤ burst 3", got)
	}
}

func TestRetryBudgetNil(t *testing.T) {
	var b *RetryBudget
	b.Deposit()
	if !b.TrySpend() {
		t.Fatal("nil budget must always grant")
	}
}

func TestBreakerTripsOnConsecutiveFailures(t *testing.T) {
	reg := obs.NewRegistry()
	b := NewBreaker("profile", BreakerOptions{ConsecutiveFailures: 3, Cooldown: 50 * time.Millisecond}, reg, "t")
	for i := 0; i < 3; i++ {
		done, err := b.Allow()
		if err != nil {
			t.Fatalf("attempt %d unexpectedly denied: %v", i, err)
		}
		done(false)
	}
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want open", got)
	}
	if _, err := b.Allow(); err == nil {
		t.Fatal("open breaker must deny")
	} else {
		var oe *OpenError
		if !asOpenError(err, &oe) {
			t.Fatalf("denial should be *OpenError, got %T", err)
		}
		if oe.RetryAfterHint() <= 0 {
			t.Fatalf("RetryAfterHint = %v, want > 0", oe.RetryAfterHint())
		}
	}
}

func asOpenError(err error, target **OpenError) bool {
	oe, ok := err.(*OpenError)
	if ok {
		*target = oe
	}
	return ok
}

func TestBreakerHalfOpenSingleFlightAndRecovery(t *testing.T) {
	b := NewBreaker("x", BreakerOptions{ConsecutiveFailures: 1, Cooldown: 20 * time.Millisecond}, nil, "t")
	done, _ := b.Allow()
	done(false) // trip
	if b.State() != BreakerOpen {
		t.Fatal("breaker should be open")
	}
	time.Sleep(30 * time.Millisecond)
	probe, err := b.Allow()
	if err != nil {
		t.Fatalf("cooldown elapsed, probe should be allowed: %v", err)
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	// Second caller while the probe is in flight: denied.
	if _, err := b.Allow(); err == nil {
		t.Fatal("second half-open caller must be denied (single-flight)")
	}
	probe(true)
	if b.State() != BreakerClosed {
		t.Fatalf("state after good probe = %v, want closed", b.State())
	}
	if done, err := b.Allow(); err != nil {
		t.Fatalf("closed breaker should allow: %v", err)
	} else {
		done(true)
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	b := NewBreaker("x", BreakerOptions{ConsecutiveFailures: 1, Cooldown: 10 * time.Millisecond}, nil, "t")
	done, _ := b.Allow()
	done(false)
	time.Sleep(15 * time.Millisecond)
	probe, err := b.Allow()
	if err != nil {
		t.Fatal(err)
	}
	probe(false)
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
}

func TestBreakerErrorRatioTrip(t *testing.T) {
	b := NewBreaker("x", BreakerOptions{
		ConsecutiveFailures: 1000, // never trip on the run
		ErrorRatio:          0.5,
		MinSamples:          10,
		Window:              time.Minute,
	}, nil, "t")
	// Alternate success/failure: 50% error ratio over ≥ MinSamples.
	for i := 0; i < 12; i++ {
		done, err := b.Allow()
		if err != nil {
			break
		}
		done(i%2 == 0)
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open on 50%% error ratio", b.State())
	}
}

func TestBreakerGroupPerEndpoint(t *testing.T) {
	g := NewBreakerGroup(BreakerOptions{ConsecutiveFailures: 1}, nil, "t")
	done, _ := g.Get("circles").Allow()
	done(false)
	if g.Get("circles").State() != BreakerOpen {
		t.Fatal("circles breaker should be open")
	}
	if g.Get("profile").State() != BreakerClosed {
		t.Fatal("profile breaker must be independent")
	}
	states := g.States()
	if states["circles"] != BreakerOpen || states["profile"] != BreakerClosed {
		t.Fatalf("States() = %v", states)
	}
}

func TestDeadlineHeaderRoundTrip(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	req := httptest.NewRequest(http.MethodGet, "/people/1", nil)
	SetDeadlineHeader(ctx, req)
	v := req.Header.Get(DeadlineHeader)
	if v == "" {
		t.Fatal("deadline header not set")
	}
	d, ok := DeadlineFromHeader(req)
	if !ok {
		t.Fatal("deadline header did not parse")
	}
	if until := time.Until(d); until <= 0 || until > 600*time.Millisecond {
		t.Fatalf("parsed deadline %v from now, want ≈500ms", until)
	}
}

func TestDeadlineHeaderMalformed(t *testing.T) {
	for _, v := range []string{"", "garbage", "-5", "0", "1.5"} {
		req := httptest.NewRequest(http.MethodGet, "/", nil)
		if v != "" {
			req.Header.Set(DeadlineHeader, v)
		}
		if _, ok := DeadlineFromHeader(req); ok {
			t.Fatalf("header %q should not parse", v)
		}
	}
}

func TestDeadlineHeaderAbsentWithoutDeadline(t *testing.T) {
	req := httptest.NewRequest(http.MethodGet, "/", nil)
	SetDeadlineHeader(context.Background(), req)
	if got := req.Header.Get(DeadlineHeader); got != "" {
		t.Fatalf("header = %q, want unset for deadline-free context", got)
	}
}

func TestAdmissionBoundedConcurrency(t *testing.T) {
	a := NewAdmission(AdmissionOptions{MaxConcurrent: 2, MaxQueue: 2, MaxWait: 50 * time.Millisecond}, nil, "t")
	r1, shed := a.Acquire(context.Background(), PriorityHigh, time.Time{})
	if shed != nil {
		t.Fatal(shed)
	}
	r2, shed := a.Acquire(context.Background(), PriorityHigh, time.Time{})
	if shed != nil {
		t.Fatal(shed)
	}
	// Third request must queue, then time out at MaxWait.
	start := time.Now()
	_, shed = a.Acquire(context.Background(), PriorityHigh, time.Time{})
	if shed == nil {
		t.Fatal("third request should be shed after MaxWait")
	}
	if shed.Reason != ShedTimeout {
		t.Fatalf("reason = %q, want %q", shed.Reason, ShedTimeout)
	}
	if shed.RetryAfter <= 0 {
		t.Fatal("shed must carry a Retry-After hint")
	}
	if waited := time.Since(start); waited < 30*time.Millisecond {
		t.Fatalf("shed after %v, should have waited ≈MaxWait", waited)
	}
	r1()
	r2()
	// Slots free again.
	r3, shed := a.Acquire(context.Background(), PriorityHigh, time.Time{})
	if shed != nil {
		t.Fatal(shed)
	}
	r3()
}

func TestAdmissionQueueHandsOffToWaiter(t *testing.T) {
	a := NewAdmission(AdmissionOptions{MaxConcurrent: 1, MaxQueue: 4, MaxWait: time.Second}, nil, "t")
	r1, shed := a.Acquire(context.Background(), PriorityHigh, time.Time{})
	if shed != nil {
		t.Fatal(shed)
	}
	got := make(chan *ShedError, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		r2, shed := a.Acquire(context.Background(), PriorityHigh, time.Time{})
		got <- shed
		if shed == nil {
			r2()
		}
	}()
	time.Sleep(20 * time.Millisecond) // let the goroutine queue
	r1()
	wg.Wait()
	if shed := <-got; shed != nil {
		t.Fatalf("queued waiter should be admitted on release, got shed %v", shed)
	}
}

func TestAdmissionQueueFullSheds(t *testing.T) {
	a := NewAdmission(AdmissionOptions{MaxConcurrent: 1, MaxQueue: 1, MaxWait: time.Second}, nil, "t")
	release, shed := a.Acquire(context.Background(), PriorityLow, time.Time{})
	if shed != nil {
		t.Fatal(shed)
	}
	defer release()
	var wg sync.WaitGroup
	wg.Add(1)
	queued := make(chan *ShedError, 1)
	go func() {
		defer wg.Done()
		r, shed := a.Acquire(context.Background(), PriorityLow, time.Time{})
		queued <- shed
		if shed == nil {
			r()
		}
	}()
	time.Sleep(20 * time.Millisecond)
	// Queue is full (1 low-pri waiter). A low-pri arrival is shed...
	_, shed = a.Acquire(context.Background(), PriorityLow, time.Time{})
	if shed == nil || shed.Reason != ShedQueueFull {
		t.Fatalf("low-pri arrival at full queue: shed = %v, want queue_full", shed)
	}
	// ...but a high-pri arrival displaces the queued low-pri waiter.
	var wg2 sync.WaitGroup
	wg2.Add(1)
	go func() {
		defer wg2.Done()
		r, shed := a.Acquire(context.Background(), PriorityHigh, time.Time{})
		if shed == nil {
			r()
		}
	}()
	if displaced := <-queued; displaced == nil || displaced.Reason != ShedDisplaced {
		t.Fatalf("low-pri waiter should be displaced, got %v", displaced)
	}
	release()
	wg.Wait()
	wg2.Wait()
}

func TestAdmissionDeadlineShedding(t *testing.T) {
	a := NewAdmission(AdmissionOptions{MaxConcurrent: 1, MaxQueue: 8, MaxWait: time.Second}, nil, "t")
	// Already-expired deadline: shed immediately.
	_, shed := a.Acquire(context.Background(), PriorityHigh, time.Now().Add(-time.Second))
	if shed == nil || shed.Reason != ShedExpired {
		t.Fatalf("expired deadline: shed = %v, want expired", shed)
	}
	release, shed := a.Acquire(context.Background(), PriorityHigh, time.Time{})
	if shed != nil {
		t.Fatal(shed)
	}
	defer release()
	// A deadline tighter than the estimated queue wait: shed without queueing.
	_, shed = a.Acquire(context.Background(), PriorityHigh, time.Now().Add(time.Microsecond))
	if shed == nil {
		t.Fatal("near-expired deadline should be shed rather than queued")
	}
	if shed.Reason != ShedDeadline && shed.Reason != ShedExpired {
		t.Fatalf("reason = %q, want deadline/expired", shed.Reason)
	}
}

func TestAdmissionScaleSqueezesLimit(t *testing.T) {
	scale := 1.0
	var mu sync.Mutex
	a := NewAdmission(AdmissionOptions{
		MaxConcurrent: 4,
		MaxWait:       30 * time.Millisecond,
		Scale: func() float64 {
			mu.Lock()
			defer mu.Unlock()
			return scale
		},
	}, nil, "t")
	var rels []func()
	for i := 0; i < 4; i++ {
		r, shed := a.Acquire(context.Background(), PriorityHigh, time.Time{})
		if shed != nil {
			t.Fatalf("acquire %d: %v", i, shed)
		}
		rels = append(rels, r)
	}
	for _, r := range rels {
		r()
	}
	mu.Lock()
	scale = 0.25 // squeeze to 1 slot
	mu.Unlock()
	r1, shed := a.Acquire(context.Background(), PriorityHigh, time.Time{})
	if shed != nil {
		t.Fatal(shed)
	}
	defer r1()
	if _, shed := a.Acquire(context.Background(), PriorityHigh, time.Time{}); shed == nil {
		t.Fatal("second acquire should shed under a 0.25 squeeze of 4")
	}
	if rep := a.Report(); rep.Limit != 1 {
		t.Fatalf("report limit = %d, want 1", rep.Limit)
	}
}

func TestAdmissionNil(t *testing.T) {
	var a *Admission
	release, shed := a.Acquire(context.Background(), PriorityLow, time.Time{})
	if shed != nil {
		t.Fatal("nil admission must admit")
	}
	release()
}

func TestAdmissionServeHTTP(t *testing.T) {
	a := NewAdmission(AdmissionOptions{MaxConcurrent: 2}, nil, "t")
	release, _ := a.Acquire(context.Background(), PriorityHigh, time.Time{})
	defer release()
	rec := httptest.NewRecorder()
	a.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/admission", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var rep AdmissionReport
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if rep.Inflight != 1 || rep.Limit != 2 {
		t.Fatalf("report = %+v", rep)
	}
	if !strings.Contains(rec.Header().Get("Content-Type"), "application/json") {
		t.Fatalf("content-type = %q", rec.Header().Get("Content-Type"))
	}
}

func TestAIMDDecreaseAndRecovery(t *testing.T) {
	g := NewAIMD(AIMDOptions{Min: 1, Max: 8, Cooldown: time.Millisecond}, nil, "t")
	if g.Limit() != 8 {
		t.Fatalf("initial limit = %d, want 8", g.Limit())
	}
	g.RecordOverload()
	if g.Limit() != 4 {
		t.Fatalf("limit after one cut = %d, want 4", g.Limit())
	}
	time.Sleep(2 * time.Millisecond)
	g.RecordOverload()
	if g.Limit() != 2 {
		t.Fatalf("limit after two cuts = %d, want 2", g.Limit())
	}
	if g.Decreases() != 2 {
		t.Fatalf("decreases = %d, want 2", g.Decreases())
	}
	// Additive increase: limit-many successes buy one slot.
	for i := 0; i < 2; i++ {
		g.RecordSuccess()
	}
	if g.Limit() != 3 {
		t.Fatalf("limit after recovery credits = %d, want 3", g.Limit())
	}
}

func TestAIMDCooldownCoalescesBurst(t *testing.T) {
	g := NewAIMD(AIMDOptions{Min: 1, Max: 16, Cooldown: time.Hour}, nil, "t")
	for i := 0; i < 10; i++ {
		g.RecordOverload()
	}
	if g.Limit() != 8 {
		t.Fatalf("limit = %d: a burst inside the cooldown must count as one cut", g.Limit())
	}
}

func TestAIMDFloor(t *testing.T) {
	g := NewAIMD(AIMDOptions{Min: 2, Max: 4, Cooldown: 0}, nil, "t")
	for i := 0; i < 10; i++ {
		g.RecordOverload()
		time.Sleep(300 * time.Microsecond)
	}
	if g.Limit() < 2 {
		t.Fatalf("limit = %d fell below Min", g.Limit())
	}
}

func TestAIMDGateBlocksAtLimit(t *testing.T) {
	g := NewAIMD(AIMDOptions{Min: 1, Max: 1}, nil, "t")
	if !g.Acquire(context.Background()) {
		t.Fatal("first acquire should pass")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if g.Acquire(ctx) {
		t.Fatal("second acquire should block until ctx expiry")
	}
	g.Release()
	if !g.Acquire(context.Background()) {
		t.Fatal("released slot should be acquirable")
	}
	g.Release()
}

func TestAIMDNil(t *testing.T) {
	var g *AIMD
	if !g.Acquire(context.Background()) {
		t.Fatal("nil gate must admit")
	}
	g.Release()
	g.RecordSuccess()
	g.RecordOverload()
}

func TestMetricsRegistered(t *testing.T) {
	reg := obs.NewRegistry()
	NewRetryBudget(BudgetOptions{}, reg, "gplusapi")
	NewBreakerGroup(BreakerOptions{}, reg, "gplusapi").Get("profile")
	NewAdmission(AdmissionOptions{}, reg, "gplusd_admission")
	NewAIMD(AIMDOptions{}, reg, "crawler")
	snap := reg.Snapshot()
	want := []string{
		"gplusapi_retry_budget_tokens_milli",
		"gplusapi_breaker_state",
		"gplusd_admission_limit",
		"gplusd_admission_shed_total",
		"crawler_aimd_limit",
	}
	joined := strings.Join(snapKeys(snap), "\n")
	for _, name := range want {
		if !strings.Contains(joined, name) {
			t.Errorf("series %q not registered; have:\n%s", name, joined)
		}
	}
}

func snapKeys(snap obs.Snapshot) []string {
	var out []string
	for name := range snap.Counters {
		out = append(out, name)
	}
	for name := range snap.Gauges {
		out = append(out, name)
	}
	for name := range snap.Histograms {
		out = append(out, name)
	}
	return out
}
