# Reproduction workflow targets. Everything is stdlib-only Go; no
# network access is required.

GO ?= go

# staticcheck runs in `make check` only when a binary of exactly this
# version is already on PATH (the pin keeps CI and laptops agreeing on
# the rule set). It is never downloaded — no network access is required.
STATICCHECK_VERSION ?= 2024.1

.PHONY: all check help build vet test race staticcheck hygiene chaos brownout trace-demo dash-demo prof-demo bench bench-hotpath bench-analysis bench-storage paperscale ablations fuzz fuzz-short verify examples report clean

# Default check path: the tier-1 verify (build + test) plus vet and the
# race suite over the concurrent packages.
all: build vet test race

# check is the conventional entry point for the same gate; the race leg
# covers the sharded rate limiter and the batched crawl frontier, the
# short fuzz leg shakes the checkpoint/journal parser, the hygiene leg
# gates the metric exposition, the brownout leg proves kill-free
# convergence through a server overload, and staticcheck runs when the
# pinned version is installed.
check: all staticcheck hygiene brownout fuzz-short

help:
	@echo "make all            build + vet + test + race (default)"
	@echo "make check          all + staticcheck + hygiene + brownout + fuzz-short"
	@echo "make hygiene        metrics-hygiene gate: naming grammar + HELP lines"
	@echo "make chaos          kill/resume convergence under the fault suite"
	@echo "make brownout       kill-free convergence through a server brownout"
	@echo "make trace-demo     chaos crawl with request tracing on both sides"
	@echo "make dash-demo      short chaos crawl rendered on the live dashboard"
	@echo "make prof-demo      brownout crawl -> profile ring -> offline analysis + diff"
	@echo "make bench          one benchmark per table/figure"
	@echo "make bench-hotpath  serving/crawling hot paths -> BENCH_hotpath.json"
	@echo "make bench-analysis graph analytics at P=1/4/8/NumCPU -> BENCH_analysis.json"
	@echo "make bench-storage  out-of-core CSR: segment/compact/load/scan -> BENCH_storage.json"
	@echo "make paperscale     10M-node/200M-edge out-of-core acceptance run (slow; merges RSS rows into BENCH_storage.json)"
	@echo "make ablations      design-choice ablation experiments"
	@echo "make fuzz           long fuzz of every parser (30s each)"
	@echo "make verify         generate a dataset and audit it against the paper"
	@echo "make examples       run every example binary"
	@echo "make report         full Markdown report from a fresh dataset"

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/obs/ ./internal/obs/prof/ ./internal/obs/series/ ./internal/crawler/ ./internal/dataset/ ./internal/gplusd/ ./internal/graph/ ./internal/graph/diskcsr/ ./internal/resilience/

# The metrics-hygiene gate: every family either registry exposes after a
# faulted crawl must match the Prometheus naming grammar and carry a
# HELP line, and every sample must belong to a declared TYPE.
hygiene:
	$(GO) test -count=1 -run TestMetricsHygiene ./internal/crawler/

# Lint with the pinned staticcheck when (and only when) it is installed;
# a missing or differently versioned binary skips with a notice instead
# of failing a network-free checkout.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		have=$$(staticcheck -version 2>/dev/null | head -n1); \
		case "$$have" in \
		*$(STATICCHECK_VERSION)*) staticcheck ./... ;; \
		*) echo "staticcheck: have '$$have', want $(STATICCHECK_VERSION); skipping" ;; \
		esac; \
	else \
		echo "staticcheck: not installed; skipping (pin: $(STATICCHECK_VERSION))"; \
	fi

# The robustness gate: crawl under the full chaos fault suite, kill the
# crawl mid-flight, tear the journal tail, resume, and require exact
# convergence with a fault-free crawl — all under the race detector.
chaos:
	$(GO) test -race -count=1 -run TestChaosKillResumeConvergence -v ./internal/crawler/

# The overload-resilience gate: crawl straight through a server brownout
# (latency ramp + admission squeeze) with no kill and no resume, and
# require an identical dataset, retry amplification <= 1.1x, Retry-After
# on every shed, and an SLO engine that pages and recovers — all under
# the race detector.
brownout:
	$(GO) test -race -count=1 -run TestBrownoutConvergence -v ./internal/crawler/

# The tracing demo: a short chaos crawl with request tracing on both
# sides of the wire. Fails if the exemplar dump comes out empty or the
# critical-path analysis is missing; -v prints the merged span trees
# (client attempt spans with gplusd server spans joined under them).
trace-demo:
	$(GO) test -count=1 -run TestTraceDemo -v ./internal/crawler/

# The dashboard demo: a short chaos crawl rendered frame-by-frame on the
# live dashboard, exactly as `gpluscrawl -dash` wires it; -v prints the
# final frame and the offline health report replayed from the same
# rings (outage spike, SLO violation span, alert transition).
dash-demo:
	$(GO) test -count=1 -run TestDashDemo -v ./internal/crawler/

# The continuous-profiling demo, end to end: a brownout chaos crawl
# fills a profile ring (interval captures plus the anomaly capture the
# SLO page triggers, phase-label attribution asserted in-test), then
# the offline analyzer decodes the same ring — CPU cost by crawl phase,
# and a steady-state vs anomaly-window diff.
prof-demo:
	rm -rf /tmp/gplus-prof-demo
	PROF_DEMO_DIR=/tmp/gplus-prof-demo $(GO) test -count=1 -run TestContinuousProfilingE2E -v ./internal/crawler/
	$(GO) run ./cmd/gplusanalyze profiles -by label -label phase /tmp/gplus-prof-demo
	$(GO) run ./cmd/gplusanalyze profiles -by label -label phase -trigger interval \
	    -diff /tmp/gplus-prof-demo -diff-trigger slo-page -top 10 /tmp/gplus-prof-demo

# One benchmark per table and figure, headline values as custom metrics.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x .

# Serving/crawling hot-path benchmarks (server throughput by client
# count, scheduler offer/next by worker count, rate limiter, fault
# injection), recorded as a JSON baseline future PRs can diff against.
bench-hotpath:
	$(GO) test -run '^$$' -bench 'ServerThroughput|SchedulerOffer|RateLimiterAllow|FaultInjection|CollectorSample' \
	    -benchmem -count=1 . ./internal/crawler ./internal/gplusd ./internal/obs/series \
	    | $(GO) run ./cmd/benchjson -out BENCH_hotpath.json

# The graph-analytics suite behind the parallelized analysis stage: every
# algorithm on a ~1M-node heavy-tailed synth graph at P in {1,4,8,NumCPU},
# recorded as a JSON baseline future PRs can diff against. Results are
# byte-identical across P (tested); only wall-clock should move.
bench-analysis:
	$(GO) test -run '^$$' -bench 'BenchmarkAnalysis' -benchmem -benchtime=1x -count=1 -timeout 30m ./internal/graph \
	    | $(GO) run ./cmd/benchjson -out BENCH_analysis.json

# The out-of-core storage suite: segment ingest, k-way compaction, v2
# encode, load (materialize vs verified mmap vs unverified mmap), and
# the two kernel access patterns (sequential sweep, random row probes)
# over both backends, recorded as a JSON baseline future PRs can diff
# against. `make paperscale` later merges its rows into the same file
# without disturbing these.
bench-storage:
	$(GO) test -run '^$$' -bench 'BenchmarkStorage' -benchmem -benchtime=1x -count=1 -timeout 30m ./internal/graph/diskcsr \
	    | $(GO) run ./cmd/benchjson -out BENCH_storage.json

# The paper-scale acceptance run for the out-of-core pipeline: stream a
# >=10M-node/>=200M-edge synthetic edge list into sorted segments,
# compact them into one CSR v2 file, run degrees/WCC/triangles over the
# memory-mapped form, then materialize and require byte-identical
# results in RAM. Stage timings and peak-RSS checkpoints are merged
# into BENCH_storage.json as PaperScale/* rows. Needs a few GB of disk
# in GPLUS_PAPERSCALE_DIR (default /tmp) and tens of minutes.
paperscale:
	GPLUS_PAPERSCALE=1 GPLUS_PAPERSCALE_DIR=/tmp/gplus-paperscale \
	    GPLUS_BENCH_OUT=$(CURDIR)/BENCH_storage.json \
	    $(GO) test -count=1 -run TestPaperScale -v -timeout 120m ./internal/graph/diskcsr/
	rm -rf /tmp/gplus-paperscale

# Design-choice ablations and the methodology/future-work experiments.
ablations:
	$(GO) test -bench='Ablation|SamplingBias|SeedSensitivity|Growth|Stream|Recommendation' -benchtime=1x .

fuzz:
	$(GO) test -fuzz=FuzzParseProfileHTML -fuzztime=30s ./internal/gplusapi/
	$(GO) test -fuzz=FuzzToProfile -fuzztime=30s ./internal/gplusapi/
	$(GO) test -fuzz=FuzzReadBinary -fuzztime=30s ./internal/graph/
	$(GO) test -fuzz=FuzzOpenV2 -fuzztime=30s ./internal/graph/diskcsr/
	$(GO) test -fuzz=FuzzReadResult -fuzztime=30s ./internal/crawler/
	$(GO) test -fuzz=FuzzParseFaultSpec -fuzztime=30s ./internal/gplusd/

# The quick fuzz leg of `make check`: the checkpoint/journal parser is
# the one format a crash can hand arbitrary torn bytes to.
fuzz-short:
	$(GO) test -run '^$$' -fuzz=FuzzReadResult -fuzztime=10s ./internal/crawler/

# Generate a dataset and audit it against the paper's published claims.
verify:
	$(GO) run ./cmd/gplusgen -nodes 100000 -out /tmp/gplus-verify-data
	$(GO) run ./cmd/gplusverify -data /tmp/gplus-verify-data

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/crawlpipeline
	$(GO) run ./examples/privacystudy
	$(GO) run ./examples/geostudy
	$(GO) run ./examples/growthstudy
	$(GO) run ./examples/streamstudy
	$(GO) run ./examples/recommendstudy

# Full Markdown report (EXPERIMENTS-style) from a fresh dataset.
report:
	$(GO) run ./cmd/gplusgen -nodes 100000 -out /tmp/gplus-report-data
	$(GO) run ./cmd/gplusanalyze -data /tmp/gplus-report-data -format md

clean:
	rm -rf /tmp/gplus-verify-data /tmp/gplus-report-data /tmp/gplus-prof-demo /tmp/gplus-paperscale
