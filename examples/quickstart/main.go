// Quickstart: generate a synthetic Google+ universe, run the core
// analyses, and print the headline numbers of the study.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"gplus/internal/core"
	"gplus/internal/dataset"
	"gplus/internal/synth"
)

func main() {
	// 1. Generate a calibrated universe (the stand-in for the crawled
	//    Google+ population; see DESIGN.md for the substitution).
	universe, err := synth.Generate(synth.DefaultConfig(25_000))
	if err != nil {
		log.Fatal(err)
	}

	// 2. Wrap it as an analysis-ready dataset and build a Study.
	study := core.New(dataset.FromUniverse(universe), core.Options{Seed: 42})

	// 3. Reproduce the paper's headline measurements.
	ctx := context.Background()
	topo := study.Topology(ctx)
	fmt.Printf("graph: %d nodes, %d edges, avg degree %.1f\n", topo.Nodes, topo.Edges, topo.AvgDegree)
	fmt.Printf("reciprocity: %.0f%% of links are mutual (paper: 32%%)\n", 100*topo.Reciprocity)

	paths := study.PathLengths(ctx)
	fmt.Printf("degrees of separation: avg %.1f directed / %.1f undirected (paper: 5.9 / 4.7 at 35M nodes)\n",
		paths.Directed.Mean(), paths.Undirected.Mean())

	degrees, err := study.Degrees()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("power-law fits: in-degree alpha=%.2f, out-degree alpha=%.2f (paper: 1.3 / 1.2)\n",
		degrees.InFit.Alpha, degrees.OutFit.Alpha)

	fmt.Println("top-5 most-followed users:")
	for _, u := range study.TopUsers(5) {
		fmt.Printf("  #%d %-14s %-30s in %d circles\n", u.Rank, u.Name, u.Occupation, u.InDegree)
	}
}
