// Growth study: the paper's proposed follow-up work (§7) — simulate the
// service's two launch regimes (§2.1: invitation-only field trial, then
// open sign-up), take a topology snapshot per epoch, and test for the
// phase transition, the densification law, and shrinking path lengths.
//
//	go run ./examples/growthstudy
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"

	"gplus/internal/graph"
	"gplus/internal/growth"
)

func main() {
	snaps, err := growth.Simulate(growth.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("epoch  phase        users     edges   avg-deg  path-len")
	rng := rand.New(rand.NewPCG(1, 1))
	for _, s := range snaps {
		dist := graph.SamplePathLengths(context.Background(), s.Graph, graph.Undirected,
			graph.PathLengthOptions{MinSources: 16, MaxSources: 48, Rand: rng})
		fmt.Printf("%5d  %-11s %7d  %8d  %7.1f  %8.2f\n",
			s.Epoch, s.Phase, s.Users, s.Edges, s.Graph.AvgDegree(), dist.Mean())
	}

	fit, err := growth.DensificationFit(snaps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndensification law: E ∝ N^%.2f (R²=%.3f) — superlinear, per Leskovec et al. [28]\n",
		fit.Slope, fit.R2)

	if epoch, ok := growth.TippingPoint(snaps); ok {
		fmt.Printf("phase transition detected at epoch %d (open sign-up began after epoch %d)\n",
			epoch-1, growth.DefaultConfig().InvitationEpochs)
	}
}
