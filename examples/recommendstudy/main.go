// Recommendation study: the §6 implication made executable — should a
// friend recommender restrict its candidates to the user's own country?
// Yes for inward-looking countries (Brazil, India, the US), far less so
// for outward-looking ones (the UK, Canada), whose real ties often cross
// the border.
//
//	go run ./examples/recommendstudy
package main

import (
	"fmt"
	"log"

	"gplus/internal/dataset"
	"gplus/internal/recommend"
	"gplus/internal/synth"
)

func main() {
	universe, err := synth.Generate(synth.DefaultConfig(30_000))
	if err != nil {
		log.Fatal(err)
	}
	ds := dataset.FromUniverse(universe)

	fmt.Println("held-out link prediction, hit-rate@10 (located pairs)")
	fmt.Printf("%-22s %8s %9s %8s\n", "population", "global", "domestic", "gain")
	for _, group := range []struct {
		label     string
		countries []string
	}{
		{"inward (BR, IN)", []string{"BR", "IN"}},
		{"US", []string{"US"}},
		{"outward (GB, CA)", []string{"GB", "CA"}},
	} {
		run := func(mode recommend.Mode) float64 {
			res, err := recommend.Evaluate(ds, mode, recommend.EvalOptions{
				Holdout: 500, K: 10, Seed: 21,
				Countries: group.countries, LocatedOnly: true,
			})
			if err != nil {
				log.Fatal(err)
			}
			return res.HitRate()
		}
		g, d := run(recommend.Global), run(recommend.Domestic)
		fmt.Printf("%-22s %8.3f %9.3f %+8.3f\n", group.label, g, d, d-g)
	}

	fmt.Println("\nper the paper (§6): recommend domestic users in Brazil and India;")
	fmt.Println("recommend across the border for the UK and Canada.")
}
