// Stream study: the paper's second future-work direction (§7) — how
// openness and privacy settings shape content sharing. Simulates the
// §2.1 content layer (posts, per-post visibility, +1s, reshares) over a
// synthetic population and reports diffusion patterns.
//
//	go run ./examples/streamstudy
package main

import (
	"fmt"
	"log"

	"gplus/internal/dataset"
	"gplus/internal/stats"
	"gplus/internal/stream"
	"gplus/internal/synth"
)

func main() {
	universe, err := synth.Generate(synth.DefaultConfig(30_000))
	if err != nil {
		log.Fatal(err)
	}
	ds := dataset.FromUniverse(universe)
	res, err := stream.Simulate(ds, stream.DefaultConfig(50_000))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("simulated %d posts by %d distinct authors\n", len(res.Posts), len(res.PostsByAuthor))

	// Prolific-user concentration: a tiny elite produces most content.
	fmt.Printf("content concentration: top 1%% of posters wrote %.0f%%, top 10%% wrote %.0f%%\n",
		100*res.Concentration(1), 100*res.Concentration(10))

	// Openness and information flow: public posts travel much further.
	reach := res.ReachByVisibility()
	fmt.Printf("mean reach: public %.1f users vs circles-limited %.1f users\n",
		reach[stream.Public], reach[stream.Circles])

	// Cascade structure: heavy-tailed reshare trees.
	ccdf := res.CascadeSizeCCDF()
	if len(ccdf) > 0 {
		fmt.Printf("reshare cascades: %d formed; largest %d reshares; P(size >= 5) = %.3f\n",
			countCascades(res), int(ccdf[len(ccdf)-1].X), at(ccdf, 5))
	}
	var deepest int
	for _, p := range res.Posts {
		if p.Depth > deepest {
			deepest = p.Depth
		}
	}
	fmt.Printf("deepest reshare chain: %d hops\n", deepest)
}

func countCascades(res *stream.Result) int {
	n := 0
	for _, p := range res.Posts {
		if p.Reshares > 0 {
			n++
		}
	}
	return n
}

// at evaluates a CCDF point series at x.
func at(pts []stats.Point, x float64) float64 {
	for _, p := range pts {
		if p.X >= x {
			return p.Y
		}
	}
	return 0
}
