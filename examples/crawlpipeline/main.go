// Crawl pipeline: the full measurement methodology end to end, in one
// process — generate a ground-truth universe, serve it over real HTTP
// with the 10,000-entry circle cap, crawl it with a budget-limited
// bidirectional BFS (11 workers, like the paper's 11 machines), and
// compare what the crawl recovered against the ground truth.
//
//	go run ./examples/crawlpipeline
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"

	"gplus/internal/core"
	"gplus/internal/crawler"
	"gplus/internal/dataset"
	"gplus/internal/gplusapi"
	"gplus/internal/gplusd"
	"gplus/internal/graph"
	"gplus/internal/report"
	"gplus/internal/synth"
)

func main() {
	// Ground truth: the "real" Google+ of this simulation.
	cfg := synth.DefaultConfig(20_000)
	universe, err := synth.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ground truth: %d users, %d edges\n", universe.NumUsers(), universe.Graph.NumEdges())

	// Serve it like the live site did: capped circle lists, real HTTP.
	srv := gplusd.New(universe, gplusd.Options{CircleCap: 300, RatePerSecond: 5000})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	go http.Serve(ln, srv) //nolint:errcheck — shut down with the process
	baseURL := "http://" + ln.Addr().String()

	// Seed at the most popular profile, as the paper seeded at Mark
	// Zuckerberg's.
	ctx := context.Background()
	client := &gplusapi.Client{BaseURL: baseURL}
	seed, err := client.FetchSeed(ctx)
	if err != nil {
		log.Fatal(err)
	}

	// Budget-limited bidirectional BFS: most of the population stays an
	// uncrawled frontier, reproducing the paper's 27.5M-of-35.1M crawl.
	res, err := crawler.Crawl(ctx, crawler.Config{
		BaseURL:     baseURL,
		Seeds:       []string{seed},
		Workers:     11,
		MaxProfiles: 4_000,
		FetchIn:     true,
		FetchOut:    true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crawl: %d profiles fetched, %d users discovered, %d pages, %v elapsed\n",
		res.Stats.ProfilesCrawled, res.Stats.Discovered, res.Stats.PagesFetched, res.Stats.Duration)

	ds := dataset.FromCrawl(res)
	study := core.New(ds, core.Options{Seed: 7})

	// How much of the truth did the crawl see?
	truthEdges := universe.Graph.NumEdges()
	fmt.Printf("coverage: %.1f%% of users crawled, %d of %d true edges observed (%.1f%%)\n",
		100*float64(ds.NumCrawled())/float64(universe.NumUsers()),
		ds.Graph.NumEdges(), truthEdges,
		100*float64(ds.Graph.NumEdges())/float64(truthEdges))

	// §2.2's lost-edge estimate and §3.3.4's partial-crawl SCC structure.
	report.LostEdges(os.Stdout, study.LostEdges(300))
	scc := study.SCC()
	fmt.Printf("SCCs: %d components; giant covers %.0f%% of discovered users (paper: 70%%)\n",
		scc.Count, 100*scc.GiantFraction)

	// Sanity: the most popular user is identical in both views.
	truthTop := universe.IDs[graph.TopByInDegree(universe.Graph, 1, 1)[0]]
	crawlTop := study.TopUsers(1)[0].ID
	fmt.Printf("top user agrees with ground truth: %v\n", truthTop == crawlTop)
}
