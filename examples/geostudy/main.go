// Geo study: the Section 4 analyses — worldwide user distribution,
// penetration versus economics, path miles, and cross-country link
// structure.
//
//	go run ./examples/geostudy
package main

import (
	"fmt"
	"log"
	"os"

	"gplus/internal/core"
	"gplus/internal/dataset"
	"gplus/internal/report"
	"gplus/internal/synth"
)

func main() {
	universe, err := synth.Generate(synth.DefaultConfig(40_000))
	if err != nil {
		log.Fatal(err)
	}
	study := core.New(dataset.FromUniverse(universe), core.Options{Seed: 4})
	w := os.Stdout

	// Figure 6: where do Google+ users live?
	report.Fig6(w, study.TopCountries(11))
	fmt.Fprintln(w)

	// Figure 7: adoption is not a function of wealth — India tops the
	// Google+ penetration ranking while Japan and Russia lag far behind
	// their Internet penetration.
	report.Fig7(w, study.Penetration())
	fmt.Fprintln(w)

	// Table 5: each country follows different kinds of public figures.
	report.Table5(w, study.TopOccupationsByCountry(10))
	fmt.Fprintln(w)

	// Figure 9: physical distance shapes the social graph — friends live
	// far closer together than random pairs, reciprocal friends closest
	// of all.
	report.Fig9(w, study.PathMiles(), study.AveragePathMiles())
	fmt.Fprintln(w)

	// Figure 10: the US, Brazil, India and Indonesia look inward; the UK
	// and Canada send most of their links abroad.
	m := study.CountryLinks()
	report.Fig10(w, m)
	fmt.Fprintf(w, "\nself-loops: US=%.2f IN=%.2f GB=%.2f CA=%.2f (paper: 0.79 / 0.77 / 0.30 / 0.33)\n\n",
		m.SelfLoop("US"), m.SelfLoop("IN"), m.SelfLoop("GB"), m.SelfLoop("CA"))

	// Extension: structure of each country's domestic subgraph — the
	// border cut leaves outward-looking countries with sparser domestic
	// graphs.
	report.CountryStructures(w, study.CountryStructures())
}
