// Privacy study: the Section 3.1-3.2 and 4.3 analyses — what users share
// publicly, how the risk-taking "tel-users" differ, and how openness
// varies across cultures.
//
//	go run ./examples/privacystudy
package main

import (
	"fmt"
	"log"
	"os"

	"gplus/internal/core"
	"gplus/internal/dataset"
	"gplus/internal/report"
	"gplus/internal/synth"
)

func main() {
	universe, err := synth.Generate(synth.DefaultConfig(40_000))
	if err != nil {
		log.Fatal(err)
	}
	study := core.New(dataset.FromUniverse(universe), core.Options{Seed: 8})
	w := os.Stdout

	// Table 2: how much of their profile do users expose to the open
	// Internet?
	report.Table2(w, study.AttributeTable())
	fmt.Fprintln(w)

	// Table 3: tel-users — who publishes a phone number? (Mostly male,
	// mostly single, disproportionately from India.)
	cmp := study.TelUsers()
	report.Table3(w, cmp)
	fmt.Fprintf(w, "\ntel-users: %d of %d users (%.2f%%; paper: 0.26%%)\n\n",
		cmp.TotalTel, cmp.TotalAll, 100*float64(cmp.TotalTel)/float64(cmp.TotalAll))

	// Figure 2: tel-users share far more of everything else, too.
	report.Fig2(w, study.FieldsShared())
	fmt.Fprintln(w)

	// Figure 8: openness by culture — Indonesia and Mexico share the
	// most, Germany the least.
	report.Fig8(w, study.FieldsByCountry(nil))
	fmt.Fprintf(w, "\nopenness P(>6 fields): ID=%.3f MX=%.3f US=%.3f DE=%.3f\n",
		study.OpennessScore("ID", 6), study.OpennessScore("MX", 6),
		study.OpennessScore("US", 6), study.OpennessScore("DE", 6))
}
