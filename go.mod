module gplus

go 1.22
